"""Bit-identity gates for the fused levelized batch kernel and
quiescence fast-forward.

The levelized chunk kernel (``repro.kernels.batchlevel``) replaces the
per-cycle dynamic allocation sweep with one fused C walk of the static
level schedule per cycle, whole chunks at a time — it is only allowed
to be *faster*, never *different*.  Every test here pins some facet of
that contract: lane-for-lane lockstep against the NumPy reference and
the dynamic-sweep JIT, chunked-versus-per-cycle identity, per-lane
fallback when a fault is resident, and exact overload diagnosis parity.

Fast-forward (``run_batched(..., fast_forward=True)``) gets the safety
battery the design doc promises: it never skips while a fault is
resident, a planned fault mid-skip-window still lands on exactly its
cycle, and a livelock-style diagnosis is byte-identical with the flag
on or off.

The closed-form LFSR jump underneath fast-forward (and the farm's
checkpoint cross-check) is property-tested with hypothesis over random
widths, tap masks and distances.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.base import make_engine
from repro.engines.batch import (
    BatchEngine,
    _try_fast_forward,
    run_batched,
)
from repro.experiments.common import fig1_gt_streams, fig1_network
from repro.kernels import probe_backends
from repro.noc import NetworkConfig, RouterConfig
from repro.traffic.generators import (
    BernoulliBeTraffic,
    GtStreamTraffic,
    uniform_random,
)
from repro.traffic.rng import HardwareLfsr, lfsr_jump
from repro.traffic.stimuli import NetworkOverloadError, TrafficDriver

JIT_REASON = probe_backends()["cffi"]
needs_jit = pytest.mark.skipif(
    JIT_REASON != "ok", reason=f"cffi backend unavailable: {JIT_REASON}"
)


def torus(width: int = 3, height: int = 3, queue_depth: int = 2) -> NetworkConfig:
    return NetworkConfig(
        width, height, topology="torus", router=RouterConfig(queue_depth=queue_depth)
    )


def make_drivers(engine, load, seed=0xBEE, gt_period=None, stall_limit=10_000):
    """One Bernoulli-BE (optionally plus GT) driver per lane."""
    net = engine.cfg
    drivers = []
    for i in range(engine.lanes):
        gt = None
        if gt_period is not None:
            gt = GtStreamTraffic(net, fig1_gt_streams(net).streams, period=gt_period)
        be = (
            BernoulliBeTraffic(net, load, uniform_random(net), seed=seed + i)
            if load is not None
            else None
        )
        drivers.append(
            TrafficDriver(engine.lane(i), be=be, gt=gt, stall_limit=stall_limit)
        )
    return drivers


def full_digest(engine, drivers):
    """Everything the lockstep contract covers, per lane plus globals."""
    lanes = []
    for i, driver in enumerate(drivers):
        be = driver.be
        lanes.append(
            (
                engine.lane_snapshot(i),
                [r.__dict__ for r in engine.lane_injections(i)],
                [r.__dict__ for r in engine.lane_ejections(i)],
                {k: list(q) for k, q in driver.queues.items()},
                dict(driver._stall),
                repr(driver.submits),
                driver.flits_generated,
                None if be is None else (be.rng.state, be.rng.words_read),
            )
        )
    return lanes, engine.cycle, list(engine.metrics.per_cycle)


def arch_digest(engine, drivers):
    """The architectural subset that must match even on a terminal
    overload: the chunked path pre-generates its whole window, so driver
    queue/RNG state legitimately runs ahead of the reference there."""
    lanes = []
    for i, driver in enumerate(drivers):
        lanes.append(
            (
                engine.lane_snapshot(i),
                [r.__dict__ for r in engine.lane_injections(i)],
                [r.__dict__ for r in engine.lane_ejections(i)],
                dict(driver._stall),
                driver.overloaded,
            )
        )
    return lanes, engine.cycle, list(engine.metrics.per_cycle)


def run_case(
    kernel,
    cycles=240,
    lanes=3,
    load=0.05,
    cfg=None,
    fast_forward=False,
    gt_period=None,
    mutate=None,
):
    """Build, run, digest one batched workload under the given kernel.

    ``mutate`` maps run-progress checkpoints onto engine surgery:
    ``{cycle: fn(engine, drivers)}`` applied between run segments, so
    both sides of a comparison flip the same fault at the same cycle.
    """
    engine = BatchEngine(cfg or torus(), lanes=lanes, kernel=kernel)
    drivers = make_drivers(engine, load, gt_period=gt_period)
    marks = sorted((mutate or {}).items())
    at = 0
    for cycle, fn in marks:
        run_batched(engine, drivers, cycle - at, fast_forward=fast_forward)
        fn(engine, drivers)
        at = cycle
    run_batched(engine, drivers, cycles - at, fast_forward=fast_forward)
    return full_digest(engine, drivers)


@pytest.mark.kernel_smoke
class TestLevelizedKernelSmoke:
    @needs_jit
    def test_backend_selected(self):
        engine = BatchEngine(torus(), lanes=2, kernel="levelized")
        assert engine.kernel == "levelized"
        assert engine.schedule is not None
        assert hasattr(engine._compiled, "run_chunk")

    @needs_jit
    def test_short_lockstep_vs_python(self):
        assert run_case("levelized", cycles=120, lanes=2) == run_case(
            "python", cycles=120, lanes=2
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="auto|python|levelized|jit"):
            BatchEngine(torus(), kernel="bogus")
        with pytest.raises(ValueError, match="auto|python|levelized|jit"):
            make_engine("batch", torus(), kernel="bogus")


class TestLevelizedLockstep:
    @needs_jit
    def test_matches_python_reference(self):
        assert run_case("levelized") == run_case("python")

    @needs_jit
    def test_matches_jit_dynamic_sweep(self):
        assert run_case("levelized") == run_case("jit")

    @needs_jit
    def test_gt_plus_be_workload(self):
        kw = dict(cycles=200, lanes=2, load=0.03, cfg=fig1_network(), gt_period=40)
        assert run_case("levelized", **kw) == run_case("python", **kw)

    @needs_jit
    def test_mid_run_quarantine_keeps_identity(self):
        # A quarantined link repacks the route tables mid-run; the
        # chunk kernel must notice the stale schedule and rebind.
        mutate = {100: lambda engine, drivers: engine.quarantine_link(5, 1)}
        assert run_case("levelized", mutate=mutate) == run_case("python", mutate=mutate)

    @needs_jit
    def test_lane_fault_falls_back_per_lane(self):
        # Lane 1 carries a resident fault for the middle third: it must
        # ride the dynamic sweep while lanes 0/2 stay on the fused
        # kernel, and rejoin cleanly after the fault clears.
        mutate = {
            80: lambda engine, drivers: engine.mark_lane_fault(1),
            160: lambda engine, drivers: engine.clear_lane_fault(1),
        }
        lev = run_case("levelized", mutate=mutate)
        assert lev == run_case("python", mutate=mutate)

    def test_numpy_fallback_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        engine = BatchEngine(torus(), lanes=2, kernel="levelized")
        assert engine._compiled is None
        assert engine.kernel_reason == "backend ladder selected numpy"
        drivers = make_drivers(engine, 0.05)
        run_batched(engine, drivers, 120)
        monkeypatch.delenv("REPRO_KERNELS")
        assert full_digest(engine, drivers) == run_case(
            "python", cycles=120, lanes=2
        )

    @needs_jit
    def test_overload_diagnosis_parity(self):
        # Saturate a queue_depth-1 fabric until a driver diagnoses the
        # livelock.  The diagnostic string, cycle, architectural state,
        # events, metrics and stall counters must be byte-identical to
        # the reference; queue/RNG state may run ahead (the chunked path
        # generates its whole window before the fatal pump).
        results = {}
        for kernel in ("python", "levelized"):
            engine = BatchEngine(torus(queue_depth=1), lanes=2, kernel=kernel)
            drivers = make_drivers(engine, 0.8, stall_limit=20)
            with pytest.raises(NetworkOverloadError) as err:
                run_batched(engine, drivers, 2000)
            results[kernel] = (str(err.value), arch_digest(engine, drivers))
        assert results["levelized"] == results["python"]


class PlannedFault:
    """A pre-step hook that fires once at a planned cycle.

    Advertises :meth:`next_fire_cycle` so fast-forward may skip right
    up to — but never over — the fire cycle, mirroring the
    :class:`repro.faults.model.FaultInjector` protocol.
    """

    def __init__(self, cycle, action):
        self.cycle = cycle
        self.action = action
        self.fired_at = []

    def next_fire_cycle(self, engine):
        return self.cycle if not self.fired_at else None

    def __call__(self, engine):
        if engine.cycle >= self.cycle and not self.fired_at:
            self.fired_at.append(engine.cycle)
            self.action(engine)


class LivelockWatchdog:
    """Flap-style diagnosis hook: raises its report at a planned cycle."""

    def __init__(self, cycle):
        self.cycle = cycle

    def next_fire_cycle(self, engine):
        return self.cycle

    def __call__(self, engine):
        if engine.cycle >= self.cycle:
            raise RuntimeError(
                f"livelock diagnosed at cycle {engine.cycle}: "
                f"{len(engine.metrics.per_cycle)} cycle records, "
                f"{engine.total_buffered()} flits buffered"
            )


def spy_skips(engine):
    """Record every skip_cycles(D) the engine commits."""
    calls = []
    original = engine.skip_cycles

    def recording(cycles):
        calls.append(cycles)
        original(cycles)

    engine.skip_cycles = recording
    return calls


class TestFastForward:
    def test_identity_python_kernel(self):
        kw = dict(cycles=800, lanes=2, load=0.004)
        assert run_case("python", fast_forward=True, **kw) == run_case(
            "python", fast_forward=False, **kw
        )

    @needs_jit
    def test_identity_levelized_kernel(self):
        kw = dict(cycles=800, lanes=2, load=0.004)
        assert run_case("levelized", fast_forward=True, **kw) == run_case(
            "levelized", fast_forward=False, **kw
        )

    @needs_jit
    def test_identity_gt_only(self):
        kw = dict(cycles=400, lanes=2, load=None, cfg=fig1_network(), gt_period=97)
        assert run_case("levelized", fast_forward=True, **kw) == run_case(
            "levelized", fast_forward=False, **kw
        )

    @pytest.mark.kernel_smoke
    def test_zero_load_skips_whole_run(self):
        engine = BatchEngine(torus(), lanes=2, kernel="python")
        drivers = make_drivers(engine, 0.0)
        calls = spy_skips(engine)
        run_batched(engine, drivers, 20_000, fast_forward=True)
        assert calls == [20_000]
        assert engine.cycle == 20_000
        assert len(engine.metrics.per_cycle) == 20_000

    def test_never_skips_while_fault_resident(self):
        # Quarantined link: fabric idle, but no skip may fire.
        engine = BatchEngine(torus(), lanes=2, kernel="python")
        drivers = make_drivers(engine, 0.0)
        engine.quarantine_link(5, 1)
        assert engine.fault_resident
        assert _try_fast_forward(engine, drivers, 100) == 0
        calls = spy_skips(engine)
        run_batched(engine, drivers, 50, fast_forward=True)
        assert calls == []
        assert engine.cycle == 50

        # Lane fault: same veto.
        engine = BatchEngine(torus(), lanes=2, kernel="python")
        drivers = make_drivers(engine, 0.0)
        engine.mark_lane_fault(0)
        assert _try_fast_forward(engine, drivers, 100) == 0
        engine.clear_lane_fault(0)
        assert _try_fast_forward(engine, drivers, 100) == 100

    def test_planned_fault_lands_on_its_cycle(self):
        # A fault planned mid-skip-window: fast-forward may jump to the
        # fire cycle but not across it, and once the fault is resident
        # no further skips fire.
        results = {}
        for fast_forward in (False, True):
            engine = BatchEngine(torus(), lanes=2, kernel="python")
            drivers = make_drivers(engine, 0.0)
            fault = PlannedFault(700, lambda e: e.mark_lane_fault(0))
            engine.pre_step_hooks.append(fault)
            calls = spy_skips(engine)
            run_batched(engine, drivers, 2000, fast_forward=fast_forward)
            assert fault.fired_at == [700]
            if fast_forward:
                assert calls == [700]  # one jump, stopping exactly at the fault
            results[fast_forward] = (engine.cycle, list(engine.metrics.per_cycle))
        assert results[True] == results[False]

    def test_planned_fault_with_traffic_identity(self):
        # The SEU analogue with real traffic around it: results must be
        # byte-identical with fast-forward on or off, and the fault must
        # land on its cycle both ways.
        digests = {}
        for fast_forward in (False, True):
            engine = BatchEngine(torus(), lanes=2, kernel="python")
            drivers = make_drivers(engine, 0.01)
            fault = PlannedFault(300, lambda e: e.quarantine_link(5, 1))
            engine.pre_step_hooks.append(fault)
            run_batched(engine, drivers, 600, fast_forward=fast_forward)
            assert fault.fired_at == [300]
            digests[fast_forward] = full_digest(engine, drivers)
        assert digests[True] == digests[False]

    def test_livelock_diagnosis_byte_identical(self):
        # The flap-livelock style diagnosis: a watchdog that reports at
        # a planned cycle must produce the identical report whether the
        # idle span before it was stepped or skipped.
        reports = {}
        for fast_forward in (False, True):
            engine = BatchEngine(torus(), lanes=2, kernel="python")
            drivers = make_drivers(engine, 0.0)
            engine.pre_step_hooks.append(LivelockWatchdog(1234))
            with pytest.raises(RuntimeError) as err:
                run_batched(engine, drivers, 5000, fast_forward=fast_forward)
            reports[fast_forward] = (str(err.value), engine.cycle)
        assert reports[True] == reports[False]
        assert "cycle 1234" in reports[True][0]

    def test_opaque_hook_vetoes_skip(self):
        engine = BatchEngine(torus(), lanes=2, kernel="python")
        drivers = make_drivers(engine, 0.0)
        engine.pre_step_hooks.append(lambda e: None)  # no next_fire_cycle
        assert _try_fast_forward(engine, drivers, 100) == 0


def _reference_shift(state: int, mask: int, width: int) -> int:
    """One Galois right-shift step, the O(steps) reference."""
    lsb = state & 1
    state >>= 1
    if lsb:
        state ^= mask
    return state


class TestLfsrJump:
    """The closed-form jump is bit-identical to iterated single steps —
    over random widths, tap masks and distances, not just the shipped
    32-bit Galois polynomial."""

    @given(
        width=st.integers(min_value=2, max_value=48),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_jump_equals_iterated_steps(self, width, data):
        mask = data.draw(st.integers(min_value=1, max_value=(1 << width) - 1))
        state = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        steps = data.draw(st.integers(min_value=0, max_value=300))
        expected = state
        for _ in range(steps):
            expected = _reference_shift(expected, mask, width)
        assert lfsr_jump(state, steps, mask=mask, width=width) == expected

    @given(
        state=st.integers(min_value=0, max_value=2**32 - 1),
        a=st.integers(min_value=0, max_value=10_000),
        b=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_jump_composes(self, state, a, b):
        assert lfsr_jump(lfsr_jump(state, a), b) == lfsr_jump(state, a + b)

    @given(words=st.integers(min_value=0, max_value=400))
    @settings(max_examples=30, deadline=None)
    def test_hardware_jump_matches_reads(self, words):
        stepped = HardwareLfsr(seed=0xDEADBEEF)
        jumped = HardwareLfsr(seed=0xDEADBEEF)
        for _ in range(words):
            stepped.next_u32()
        returned = jumped.jump(words)
        assert returned == jumped.state == stepped.state
        assert jumped.words_read == stepped.words_read == words

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            lfsr_jump(1, -1)
        with pytest.raises(ValueError):
            lfsr_jump(1 << 32, 1)
        with pytest.raises(ValueError):
            HardwareLfsr().jump(-1)


class TestFarmRngResumeCheck:
    """The farm reuses lfsr_jump to cross-check a resumed checkpoint's
    RNG state against its word count."""

    def test_consistent_pair_accepted(self):
        from repro.farm.jobs import _validate_rng_resume

        rng = HardwareLfsr(seed=0x5EED)
        for _ in range(37):
            rng.next_u32()
        _validate_rng_resume(
            HardwareLfsr(seed=0x5EED),
            {"rng_state": rng.state, "rng_words": rng.words_read},
        )

    def test_torn_pair_rejected(self):
        from repro.farm.jobs import _validate_rng_resume

        rng = HardwareLfsr(seed=0x5EED)
        for _ in range(37):
            rng.next_u32()
        with pytest.raises(ValueError, match="does not match its word count"):
            _validate_rng_resume(
                HardwareLfsr(seed=0x5EED),
                {"rng_state": rng.state, "rng_words": rng.words_read - 1},
            )
