"""CI smoke test for the Table-3 speed benchmark (``repro bench``).

Runs the benchmark at a tiny cycle budget on the two sequential rows
(the cheap ones) and checks the JSON document shape end to end — the
same document the committed ``BENCH_table3.json`` at the repo root
holds, whose well-formedness is also asserted here.
"""

import json
import os

import pytest

from repro.experiments import bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestBenchDocument:
    def test_smoke_document_shape(self, tmp_path):
        doc = bench.run(
            cycles=40, engines=("sequential", "sequential-baseline"), rounds=1
        )
        assert doc["benchmark"] == "table3_engine_speed"
        assert doc["workload"]["be_load"] == bench.LOAD
        seq = doc["engines"]["sequential"]
        base = doc["engines"]["sequential-baseline"]
        assert seq["cycles"] == 40 and base["cycles"] == 40
        assert seq["cps"] > 0 and seq["seconds"] > 0
        # The optimisations never change the delta schedule, only its cost.
        assert seq["total_deltas"] == base["total_deltas"]
        assert doc["pre_pr"]["sequential_cps"] == bench.PRE_PR_SEQUENTIAL_CPS
        assert doc["speedup_vs_reference_loop"] > 0

        out = tmp_path / "bench.json"
        path = bench.write(doc, str(out))
        assert path == str(out)
        assert json.loads(out.read_text()) == doc

        rendered = bench.render(doc)
        assert "sequential" in rendered and "cycles/s" in rendered

    def test_cli_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_table3.json"
        rc = main(
            ["bench", "--scale", "0.1", "--out", str(out), "--rounds", "1"]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        expected = {
            "rtl",
            "cycle",
            "sequential",
            "sequential-baseline",
            "sequential-levelized",
            "batch",
            "pipeline",
            "sequential-16x16",
            "partitioned-2",
            "partitioned-4",
        }
        # The compiled rows are present exactly when a compiled backend
        # exists on this machine; otherwise each is skipped with a reason.
        if "batch-jit" in doc["engines"]:
            expected.add("batch-jit")
            assert doc["engines"]["batch-jit"]["backend"] == "jit"
            assert doc["speedup_batch_jit_vs_batch"] > 0
        else:
            assert "batch-jit" in doc["kernels"]["skipped"]
        if "batch-levelized" in doc["engines"]:
            expected.add("batch-levelized")
            assert doc["engines"]["batch-levelized"]["backend"].startswith(
                "levelized"
            )
            if "batch-jit" in doc["engines"]:
                assert doc["speedup_batch_levelized_vs_batch_jit"] > 0
        else:
            assert "batch-levelized" in doc["kernels"]["skipped"]
        assert set(doc["engines"]) == expected
        for row in doc["engines"].values():
            assert row["host_cores"] >= 1
        assert doc["kernels"]["backends"]["numpy"] == "ok"
        batch = doc["engines"]["batch"]
        assert batch["lanes"] == bench.BATCH_LANES
        assert batch["per_lane_cps"] > 0
        assert batch["backend"] == "python"
        assert doc["engines"]["sequential-levelized"]["backend"] is not None
        assert doc["speedup_levelized_vs_fixed_point"] > 0
        assert doc["speedup_batch_vs_sequential"] > 0
        pipe = doc["engines"]["pipeline"]
        assert pipe["lanes"] == len(bench.PIPELINE_LOADS)
        assert pipe["speedup_vs_serial"] > 0
        assert set(pipe["phase_seconds"]) == {
            "generate", "load", "simulate", "retrieve", "analyze",
        }
        part = doc["engines"]["partitioned-4"]
        assert part["partitions"] == 4
        assert part["transport"] in ("process", "local")
        assert part["network"].startswith("16x16")
        assert part["mean_boundary_rounds"] >= 1.0
        assert 0.0 <= part["boundary_sync_fraction"] <= 1.0
        assert doc["speedup_partitioned_vs_monolithic"] > 0
        assert doc["host"]["cores"] >= 1
        assert str(out) in capsys.readouterr().out

    def test_cli_bench_smoke_flag(self, tmp_path, capsys):
        """``repro bench --smoke`` exercises every row but writes nothing."""
        from repro.cli import main

        out = tmp_path / "BENCH_table3.json"
        rc = main(["bench", "--smoke", "--out", str(out)])
        assert rc == 0
        assert not out.exists()
        printed = capsys.readouterr().out
        assert "pipeline" in printed and "left untouched" in printed

    def test_committed_artifact_well_formed(self):
        path = os.path.join(REPO_ROOT, "BENCH_table3.json")
        assert os.path.exists(path), "BENCH_table3.json missing from repo root"
        with open(path) as stream:
            doc = json.load(stream)
        assert doc["benchmark"] == "table3_engine_speed"
        assert doc["pre_pr"]["sequential_cps"] > 0
        assert doc["engines"]["sequential"]["cps"] > 0
        # The headline acceptance number: the recorded run beat the
        # pre-overhaul sequential speed by at least 3x on the
        # reference machine.
        assert doc["pre_pr"]["speedup"] >= 3.0

    def test_committed_batch_row_floors(self):
        """Regression guard on the recorded batch-engine speedup.

        Skips when the artifact is absent (fresh checkouts regenerate it
        with ``repro bench``); once committed, the batch row must hold
        the acceptance floor: >= 3x the sequential engine's aggregate
        rate at >= 8 lanes.
        """
        path = os.path.join(REPO_ROOT, "BENCH_table3.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_table3.json to validate")
        with open(path) as stream:
            doc = json.load(stream)
        if "batch" not in doc["engines"]:
            pytest.skip("committed benchmark predates the batch engine")
        batch = doc["engines"]["batch"]
        assert batch["lanes"] >= 8
        assert batch["per_lane_cps"] > 0
        assert batch["cps"] == pytest.approx(
            batch["lanes"] * batch["cycles"] / batch["seconds"]
        )
        assert doc["speedup_batch_vs_sequential"] >= 3.0

    @pytest.mark.kernel_smoke
    def test_committed_kernel_row_floors(self):
        """Acceptance floors on the recorded compiled-kernel speedups.

        The levelized fused body must have beaten the fixed-point
        reference loop by >= 1.5x on the bench config, and at least one
        engine/kernel pair must have recorded a >= 2x aggregate win
        (the batch generated-C kernel over the NumPy sweeps).
        """
        path = os.path.join(REPO_ROOT, "BENCH_table3.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_table3.json to validate")
        with open(path) as stream:
            doc = json.load(stream)
        if "sequential-levelized" not in doc["engines"]:
            pytest.skip("committed benchmark predates the kernel rows")
        lev = doc["engines"]["sequential-levelized"]
        assert lev["backend"] == "levelized fused body"
        assert doc["speedup_levelized_vs_fixed_point"] >= 1.5
        # the recorded 2x+ engine/kernel pair of the acceptance criteria
        if "batch-jit" in doc["engines"]:
            assert doc["engines"]["batch-jit"]["backend"] == "jit"
            assert doc["speedup_batch_jit_vs_batch"] >= 2.0
        else:
            assert doc["speedup_levelized_vs_fixed_point"] >= 2.0, (
                "no jit row recorded: the levelized row alone must then "
                "carry the 2x acceptance floor"
            )

    @pytest.mark.kernel_smoke
    def test_committed_batch_levelized_row_floors(self):
        """Acceptance floors on the recorded fused-chunk kernel speedup.

        The batch-levelized row must have beaten the per-cycle
        generated-C kernel by >= 1.5x aggregate, and the whole compiled
        ladder must put the recorded aggregate rate >= 10x the pre-PR
        sequential baseline.
        """
        path = os.path.join(REPO_ROOT, "BENCH_table3.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_table3.json to validate")
        with open(path) as stream:
            doc = json.load(stream)
        if "batch-levelized" not in doc["engines"]:
            pytest.skip("committed benchmark predates the batch-levelized row")
        row = doc["engines"]["batch-levelized"]
        assert row["backend"].startswith("levelized")
        assert row["lanes"] >= 8
        assert row["host_cores"] >= 1
        assert doc["speedup_batch_levelized_vs_batch_jit"] >= 1.5
        assert row["cps"] >= 10 * doc["pre_pr"]["sequential_cps"]

    def test_committed_pipeline_row_floors(self):
        """Acceptance floor on the recorded streamed-sweep speedup.

        The streamed fig1 sweep must have beaten the strictly serial
        per-point sequential sweep by >= 1.5x end to end on the
        reference machine, with all five phases measured.
        """
        path = os.path.join(REPO_ROOT, "BENCH_table3.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_table3.json to validate")
        with open(path) as stream:
            doc = json.load(stream)
        if "pipeline" not in doc["engines"]:
            pytest.skip("committed benchmark predates the pipeline row")
        pipe = doc["engines"]["pipeline"]
        assert pipe["lanes"] == len(bench.PIPELINE_LOADS)
        assert pipe["speedup_vs_serial"] >= 1.5
        assert pipe["serial_sweep_seconds"] > pipe["seconds"]
        assert 0.0 <= pipe["overlap_efficiency"] <= 1.0
        phases = pipe["phase_seconds"]
        assert set(phases) == {
            "generate", "load", "simulate", "retrieve", "analyze",
        }
        assert all(v >= 0 for v in phases.values())

    def test_committed_partitioned_row_floors(self):
        """Acceptance floor on the recorded partitioned speedup.

        The partitioned rows shard the 16x16 workload across tile
        worker processes; ``speedup_partitioned_vs_monolithic`` is a
        *parallel* speedup, so the >= 1.5x floor at 4 partitions is
        asserted only when the recording host had cores to parallelise
        over.  A single-core bench host records the honest (sub-1x)
        number plus its core count, and the floor is skipped — the
        boundary protocol adds work (re-converging boundary readers,
        ~3 rounds/cycle) that only parallel execution can buy back.
        """
        path = os.path.join(REPO_ROOT, "BENCH_table3.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_table3.json to validate")
        with open(path) as stream:
            doc = json.load(stream)
        if "partitioned-4" not in doc["engines"]:
            pytest.skip("committed benchmark predates the partitioned rows")
        part = doc["engines"]["partitioned-4"]
        mono = doc["engines"]["sequential-16x16"]
        assert part["partitions"] == 4
        assert part["network"].startswith("16x16")
        assert mono["network"].startswith("16x16")
        assert part["mean_boundary_rounds"] >= 1.0
        assert 0.0 <= part["boundary_sync_fraction"] <= 1.0
        speedup = doc["speedup_partitioned_vs_monolithic"]
        assert speedup == pytest.approx(
            part["cps"] / mono["cps"], rel=0.01
        )
        cores = (doc.get("host") or {}).get("cores", 1)
        if cores < 2:
            pytest.skip(
                f"bench host had {cores} core(s): parallel-speedup floor "
                "needs a multi-core recording host"
            )
        assert speedup >= 1.5

    def test_write_merges_prior_document(self, tmp_path):
        """A partial rerun merges into the existing artifact: rows it
        did not measure and the ``pre_pr`` reference survive; corrupt
        or foreign prior files are ignored."""
        path = tmp_path / "BENCH_table3.json"
        prior = {
            "benchmark": "table3_engine_speed",
            "engines": {"rtl": {"name": "rtl", "cps": 1.0}},
            "pre_pr": {"sequential_cps": 933.0},
        }
        path.write_text(json.dumps(prior))
        new = {
            "benchmark": "table3_engine_speed",
            "engines": {"sequential": {"name": "sequential", "cps": 5.0}},
        }
        bench.write(new, str(path))
        merged = json.loads(path.read_text())
        assert set(merged["engines"]) == {"rtl", "sequential"}
        assert merged["pre_pr"]["sequential_cps"] == 933.0

        path.write_text("{not json")
        bench.write(new, str(path))
        assert set(json.loads(path.read_text())["engines"]) == {"sequential"}

        path.write_text(json.dumps({"benchmark": "other", "engines": {"x": {}}}))
        bench.write(new, str(path))
        assert set(json.loads(path.read_text())["engines"]) == {"sequential"}


class TestArtifactResilience:
    """A corrupt committed artifact (torn write, truncation, garbage)
    must be quarantined — renamed ``.corrupt-<ts>`` so the evidence
    survives — and the document rebuilt; the merge never crashes and
    never silently overwrites the corpse."""

    NEW = {
        "benchmark": "table3_engine_speed",
        "engines": {"sequential": {"name": "sequential", "cps": 5.0}},
    }

    @pytest.mark.parametrize(
        "damage",
        [
            "",  # empty file: a torn create
            '{"benchmark": "table3_engine_speed", "engi',  # truncated write
            "\x00\x01 binary garbage",  # not JSON at all
            "[1, 2, 3]",  # JSON but not an object
        ],
        ids=["empty", "truncated", "garbage", "non-object"],
    )
    def test_corrupt_prior_is_quarantined_and_rebuilt(self, tmp_path, damage):
        path = tmp_path / "BENCH_table3.json"
        path.write_text(damage)
        out = bench.write(dict(self.NEW), str(path))
        assert out == str(path)
        rebuilt = json.loads(path.read_text())
        assert set(rebuilt["engines"]) == {"sequential"}
        corpses = [p for p in os.listdir(tmp_path) if ".corrupt-" in p]
        assert len(corpses) == 1
        assert (tmp_path / corpses[0]).read_text() == damage

    def test_foreign_document_is_ignored_not_quarantined(self, tmp_path):
        path = tmp_path / "BENCH_table3.json"
        foreign = {"benchmark": "someone_elses", "engines": {"x": {}}}
        path.write_text(json.dumps(foreign))
        bench.write(dict(self.NEW), str(path))
        assert set(json.loads(path.read_text())["engines"]) == {"sequential"}
        assert not [p for p in os.listdir(tmp_path) if ".corrupt-" in p]

    def test_missing_prior_is_not_an_error(self, tmp_path):
        path = tmp_path / "BENCH_table3.json"
        bench.write(dict(self.NEW), str(path))
        assert json.loads(path.read_text())["engines"]["sequential"]["cps"] == 5.0
        assert not [p for p in os.listdir(tmp_path) if ".corrupt-" in p]


@pytest.mark.bench_smoke
class TestBenchSmokeMarker:
    """A deliberately tiny batched benchmark point: two lanes, fifty
    cycles — cheap enough for every CI pass, selectable standalone with
    ``pytest -m bench_smoke``."""

    def test_tiny_batched_point(self):
        point = bench.measure("batch", cycles=50, rounds=1, lanes=2)
        assert point.name == "batch"
        assert point.lanes == 2
        assert point.cycles == 50
        assert point.per_lane_cps > 0
        assert point.cps == pytest.approx(2 * point.cycles / point.seconds)
