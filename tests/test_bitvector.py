"""Unit and property tests for repro.bits.bitvector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import BitVector, bv, concat, ones, zeros


class TestConstruction:
    def test_basic(self):
        v = BitVector(8, 0xAB)
        assert v.width == 8
        assert v.value == 0xAB
        assert int(v) == 0xAB

    def test_zero_width(self):
        v = BitVector(0)
        assert v.width == 0
        assert v.value == 0
        assert not v

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            BitVector(4, 16)

    def test_negative_width(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_negative_value_wraps_twos_complement(self):
        assert BitVector(8, -1).value == 0xFF
        assert BitVector(8, -128).value == 0x80

    def test_immutable(self):
        v = bv(8, 1)
        with pytest.raises(AttributeError):
            v.value = 2  # type: ignore[misc]

    def test_signed_interpretation(self):
        assert BitVector(8, 0xFF).signed == -1
        assert BitVector(8, 0x7F).signed == 127
        assert BitVector(8, 0x80).signed == -128
        assert BitVector(0).signed == 0

    def test_repr_and_binary(self):
        assert "0xab" in repr(bv(8, 0xAB))
        assert bv(4, 0b1010).to_binary() == "1010"
        assert bv(0).to_binary() == ""


class TestEquality:
    def test_eq_same_width(self):
        assert bv(8, 5) == bv(8, 5)
        assert bv(8, 5) != bv(8, 6)

    def test_eq_different_width_is_not_equal(self):
        assert bv(8, 5) != bv(9, 5)

    def test_eq_int(self):
        assert bv(8, 5) == 5
        assert bv(8, 5) != 6

    def test_hashable(self):
        assert hash(bv(8, 5)) == hash(bv(8, 5))
        assert len({bv(8, 5), bv(8, 5), bv(9, 5)}) == 2


class TestLogic:
    def test_and_or_xor(self):
        a, b = bv(4, 0b1100), bv(4, 0b1010)
        assert (a & b).value == 0b1000
        assert (a | b).value == 0b1110
        assert (a ^ b).value == 0b0110

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            bv(4, 1) & bv(5, 1)

    def test_invert(self):
        assert (~bv(4, 0b1100)).value == 0b0011

    def test_int_operand_is_masked(self):
        assert (bv(4, 0b1111) & 0xFF).value == 0b1111


class TestArithmetic:
    def test_add_wraps(self):
        assert (bv(4, 15) + 1).value == 0
        assert (bv(4, 7) + bv(4, 9)).value == 0

    def test_sub_wraps(self):
        assert (bv(4, 0) - 1).value == 15

    def test_shifts(self):
        assert (bv(4, 0b0011) << 2).value == 0b1100
        assert (bv(4, 0b1100) << 2).value == 0b0000  # shifted out
        assert (bv(4, 0b1100) >> 2).value == 0b0011

    def test_negative_shift_raises(self):
        with pytest.raises(ValueError):
            bv(4, 1) << -1
        with pytest.raises(ValueError):
            bv(4, 1) >> -1


class TestSlicing:
    def test_bit(self):
        v = bv(4, 0b1010)
        assert v.bit(0) == 0
        assert v.bit(1) == 1
        assert v.bit(3) == 1

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            bv(4, 0).bit(4)

    def test_getitem_int(self):
        v = bv(4, 0b1010)
        assert v[1] == bv(1, 1)
        assert v[-1] == bv(1, 1)

    def test_getitem_slice(self):
        v = bv(8, 0xA5)
        assert v[0:4] == bv(4, 0x5)
        assert v[4:8] == bv(4, 0xA)
        assert v[:] == v

    def test_hw_slice(self):
        v = bv(8, 0xA5)
        assert v.slice(7, 4) == bv(4, 0xA)
        with pytest.raises(ValueError):
            v.slice(0, 4)

    def test_slice_no_step(self):
        with pytest.raises(ValueError):
            bv(8, 0)[::2]

    def test_with_bit(self):
        assert bv(4, 0b0000).with_bit(2, 1).value == 0b0100
        assert bv(4, 0b1111).with_bit(2, 0).value == 0b1011

    def test_with_field(self):
        assert bv(8, 0).with_field(4, bv(4, 0xA)).value == 0xA0
        with pytest.raises(IndexError):
            bv(8, 0).with_field(6, bv(4, 0xA))

    def test_iter_lsb_first(self):
        assert list(bv(4, 0b1010)) == [0, 1, 0, 1]


class TestStructural:
    def test_concat_msb_first(self):
        c = concat(bv(4, 0xA), bv(4, 0x5))
        assert c == bv(8, 0xA5)

    def test_concat_empty(self):
        assert concat() == bv(0)

    def test_zext_trunc(self):
        assert bv(4, 0xF).zext(8) == bv(8, 0x0F)
        assert bv(8, 0xAF).trunc(4) == bv(4, 0xF)
        with pytest.raises(ValueError):
            bv(8, 0).zext(4)
        with pytest.raises(ValueError):
            bv(4, 0).trunc(8)

    def test_ones_zeros(self):
        assert ones(4).value == 0xF
        assert zeros(4).value == 0

    def test_popcount(self):
        assert bv(8, 0b10110010).popcount() == 4

    def test_reversed_bits(self):
        assert bv(4, 0b0001).reversed_bits().value == 0b1000
        assert bv(8, 0b10110010).reversed_bits().value == 0b01001101


# -- property tests ---------------------------------------------------------

widths = st.integers(min_value=1, max_value=96)


@st.composite
def vec(draw, width=None):
    w = draw(widths) if width is None else width
    return BitVector(w, draw(st.integers(min_value=0, max_value=(1 << w) - 1)))


@given(vec())
def test_double_invert_identity(v):
    assert ~~v == v


@given(st.data())
def test_xor_self_is_zero(data):
    v = data.draw(vec())
    assert (v ^ v).value == 0


@given(st.data())
def test_and_or_de_morgan(data):
    w = data.draw(widths)
    a = data.draw(vec(width=w))
    b = data.draw(vec(width=w))
    assert ~(a & b) == (~a | ~b)


@given(st.data())
def test_add_sub_roundtrip(data):
    w = data.draw(widths)
    a = data.draw(vec(width=w))
    b = data.draw(vec(width=w))
    assert (a + b) - b == a


@given(vec())
def test_concat_split_roundtrip(v):
    if v.width < 2:
        return
    cut = v.width // 2
    low, high = v[0:cut], v[cut : v.width]
    assert concat(high, low) == v


@given(vec())
def test_reversed_involution(v):
    assert v.reversed_bits().reversed_bits() == v


@given(vec())
def test_iter_matches_bits(v):
    assert list(v) == [v.bit(i) for i in range(v.width)]


@given(st.data())
def test_with_field_extract_roundtrip(data):
    v = data.draw(vec())
    if v.width == 0:
        return
    fw = data.draw(st.integers(min_value=1, max_value=v.width))
    lsb = data.draw(st.integers(min_value=0, max_value=v.width - fw))
    field = data.draw(vec(width=fw))
    assert v.with_field(lsb, field)[lsb : lsb + fw] == field
