"""Property-based validation of the generic sequential-simulation
framework: on randomly generated block systems, the dynamic HBR schedule
must compute exactly what a direct parallel evaluation computes.

System construction guarantees a unique fixed point per cycle: blocks
are assigned *levels*, and a block's combinational outputs may depend
only on inputs arriving from strictly lower levels (its next-state may
depend on everything — registered feedback across any levels is fine).
That is the class of systems the paper's method targets: combinatorial
boundaries without combinational loops.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seqsim.blocks import CombBlock, DynamicBlockSimulator

WIDTH = 8
MASK = (1 << WIDTH) - 1


def build_system(rng):
    """A random levelled block system plus its direct reference model.

    Returns (simulator, reference) where reference(cycles) -> list of
    per-cycle state tuples computed by plain parallel evaluation.
    """
    n = rng.randint(2, 6)
    levels = [rng.randint(0, 3) for _ in range(n)]
    # wires: (src, dst); src feeds dst. comb-visible only if level[src] < level[dst].
    wires = []
    for dst in range(n):
        for src in range(n):
            if src != dst and rng.random() < 0.45:
                wires.append((src, dst))
    in_ports = {i: [] for i in range(n)}
    out_used = {i: 0 for i in range(n)}
    wire_list = []
    for src, dst in wires:
        port = f"in{len(in_ports[dst])}"
        in_ports[dst].append((port, src))
        out_used[src] += 1
        wire_list.append((src, dst, port))

    # random affine functions per block
    coeffs = {}
    for i in range(n):
        comb_inputs = [p for p, src in in_ports[i] if levels[src] < levels[i]]
        coeffs[i] = {
            "a_out": rng.randint(0, MASK),
            "k_out": rng.randint(0, MASK),
            "c_out": {p: rng.randint(0, 3) for p in comb_inputs},
            "a_st": rng.randint(0, MASK),
            "k_st": rng.randint(0, MASK),
            "c_st": {p: rng.randint(0, 3) for p, _ in in_ports[i]},
        }

    def make_fn(i):
        c = coeffs[i]

        def fn(state, inputs):
            out = (c["a_out"] * state + c["k_out"]) & MASK
            for p, w in c["c_out"].items():
                out = (out + w * inputs.get(p, 0)) & MASK
            nxt = (c["a_st"] * state + c["k_st"]) & MASK
            for p, w in c["c_st"].items():
                nxt = (nxt + w * inputs.get(p, 0)) & MASK
            return {"out": out}, nxt

        return fn

    resets = [rng.randint(0, MASK) for _ in range(n)]
    blocks = [
        CombBlock(
            f"b{i}",
            WIDTH,
            tuple((p, WIDTH) for p, _src in in_ports[i]),
            (("out", WIDTH),),
            make_fn(i),
            reset=resets[i],
        )
        for i in range(n)
    ]
    sim = DynamicBlockSimulator(blocks)
    for src, dst, port in wire_list:
        sim.connect(f"b{src}", "out", f"b{dst}", port)

    def reference(cycles):
        states = list(resets)
        history = []
        order = sorted(range(n), key=lambda i: levels[i])
        # wire values persist across cycles (single link-memory position)
        outs = [0] * n
        for _ in range(cycles):
            # settle comb outputs in level order from committed state;
            # a block's comb terms reference only lower levels, already
            # final; its registered-only inputs read the wire values as
            # they stand after this settling (the fixed point).
            for i in order:
                c = coeffs[i]
                value = (c["a_out"] * states[i] + c["k_out"]) & MASK
                for p, w in c["c_out"].items():
                    src = dict(in_ports[i])[p]
                    value = (value + w * outs[src]) & MASK
                outs[i] = value
            new_states = []
            for i in range(n):
                c = coeffs[i]
                nxt = (c["a_st"] * states[i] + c["k_st"]) & MASK
                for p, w in c["c_st"].items():
                    src = dict(in_ports[i])[p]
                    nxt = (nxt + w * outs[src]) & MASK
                new_states.append(nxt)
            states = new_states
            history.append(tuple(states))
        return history

    return sim, reference, n


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31), st.integers(1, 6))
def test_dynamic_schedule_equals_parallel_evaluation(seed, cycles):
    rng = random.Random(seed)
    sim, reference, n = build_system(rng)
    want = reference(cycles)
    got = []
    for _ in range(cycles):
        sim.step()
        got.append(tuple(sim.state_of(f"b{i}") for i in range(n)))
    assert got == want


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31))
def test_every_block_evaluated_each_cycle(seed):
    rng = random.Random(seed)
    sim, _reference, n = build_system(rng)
    sim.run(3)
    assert all(d >= n for d in sim.metrics.per_cycle)
    assert sim.metrics.total_deltas <= 3 * n * DynamicBlockSimulator.MAX_DELTA_FACTOR


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31))
def test_convergence_is_bounded_by_levels(seed):
    """With L levels, each system cycle settles within L+1 sweeps."""
    rng = random.Random(seed)
    sim, _reference, n = build_system(rng)
    sim.run(4)
    assert max(sim.metrics.per_cycle) <= n * 5  # levels <= 4
