"""Tests for the circuit-switched NoC (paper section 2 / reference [16])."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    CircuitConfig,
    CircuitManager,
    CircuitNetwork,
    SequentialCircuitNetwork,
    SetupError,
    circuit_state_bits,
)
from repro.noc.config import Port


def make(width=4, height=4, n_lanes=4, cls=CircuitNetwork, **kwargs):
    cfg = CircuitConfig(width, height, n_lanes=n_lanes, **kwargs)
    network = cls(cfg)
    return cfg, network, CircuitManager(network)


class TestConfig:
    def test_channels(self):
        cfg = CircuitConfig(4, 4)
        assert cfg.n_channels == 20
        assert cfg.channel(Port.EAST, 1) == 2 * 4 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitConfig(1, 1)
        with pytest.raises(ValueError):
            CircuitConfig(4, 4, n_lanes=0)
        with pytest.raises(ValueError):
            CircuitConfig(4, 4, topology="ring")

    def test_state_bits(self):
        bits = circuit_state_bits(CircuitConfig(4, 4))
        # 20 channels x (1 valid + 5-bit source) config, 20 x 17 pipeline.
        assert bits["Crossbar configuration"] == 20 * 6
        assert bits["Output registers"] == 20 * 17
        assert bits["Total"] == 20 * 23
        # An order of magnitude less state than the packet router (2112 b)
        # - the energy argument for circuit switching.
        assert bits["Total"] < 2112 / 3


class TestSetup:
    def test_setup_programs_path(self):
        cfg, network, manager = make()
        circuit = manager.setup(0, cfg.index(2, 0))
        assert circuit.n_hops == 2
        assert circuit.latency == 3
        routers = [r for r, _i, _o in circuit.hops]
        assert routers == [0, 1, 2]

    def test_lane_exhaustion_and_teardown(self):
        cfg, network, manager = make(n_lanes=2)
        a = manager.setup(0, 2)
        b = manager.setup(0, 2)
        with pytest.raises(SetupError):
            manager.setup(0, 2)  # both lanes of the east links are taken
        manager.teardown(a)
        c = manager.setup(0, 2)  # the freed lane is reusable
        assert c.entry_lane != b.entry_lane or c.exit_lane != b.exit_lane

    def test_failed_setup_rolls_back(self):
        cfg, network, manager = make(n_lanes=1)
        manager.setup(0, 1)  # occupies link 0->1
        before = network.snapshot()
        with pytest.raises(SetupError):
            manager.setup(0, 2)  # needs link 0->1 too: must fail cleanly
        assert network.snapshot() == before

    def test_self_circuit_rejected(self):
        _cfg, _network, manager = make()
        with pytest.raises(SetupError):
            manager.setup(3, 3)

    def test_lane_switching_allows_partial_overlap(self):
        """Two circuits sharing only part of their path coexist by
        taking different lanes on the shared links."""
        cfg, network, manager = make(n_lanes=2)
        a = manager.setup(cfg.index(0, 0), cfg.index(3, 0))
        b = manager.setup(cfg.index(1, 0), cfg.index(3, 1))
        assert a in manager.circuits and b in manager.circuits


class TestStreaming:
    def test_fixed_latency(self):
        """The circuit-switched guarantee: latency = path length, exact."""
        cfg, network, manager = make()
        circuit = manager.setup(0, cfg.index(3, 0))
        network.inject(0, circuit.entry_lane, 0xBEEF)
        for _ in range(circuit.latency):
            network.step()
        got = manager.received(circuit)
        assert got == [0xBEEF]
        assert network.ejections[0].cycle == circuit.latency - 1

    def test_full_bandwidth_streaming(self):
        """One word per cycle, in order, no loss."""
        cfg, network, manager = make()
        circuit = manager.setup(0, cfg.index(2, 2))
        words = list(range(1, 41))
        manager.send(circuit, list(words))
        for _ in range(len(words) + circuit.latency):
            manager.pump()
            network.step()
        assert manager.received(circuit) == words

    def test_two_circuits_do_not_interfere(self):
        cfg, network, manager = make()
        a = manager.setup(cfg.index(0, 0), cfg.index(3, 0))
        b = manager.setup(cfg.index(0, 1), cfg.index(3, 1))
        manager.send(a, [10, 11, 12])
        manager.send(b, [20, 21, 22])
        for _ in range(12):
            manager.pump()
            network.step()
        assert manager.received(a) == [10, 11, 12]
        assert manager.received(b) == [20, 21, 22]

    def test_word_width_checked(self):
        cfg, network, _ = make()
        with pytest.raises(ValueError):
            network.inject(0, 0, 1 << 16)

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_circuits_deliver_everything(self, data):
        cfg, network, manager = make(width=3, height=3, n_lanes=4)
        n_circuits = data.draw(st.integers(1, 4))
        circuits = []
        payloads = {}
        for i in range(n_circuits):
            src = data.draw(st.integers(0, 8))
            dest = data.draw(st.integers(0, 8).filter(lambda d: d != src))
            try:
                circuit = manager.setup(src, dest)
            except SetupError:
                continue  # lanes exhausted: acceptable
            words = data.draw(
                st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=12)
            )
            manager.send(circuit, list(words))
            circuits.append(circuit)
            payloads[id(circuit)] = words
        for _ in range(30):
            manager.pump()
            network.step()
        for circuit in circuits:
            assert manager.received(circuit) == payloads[id(circuit)]


class TestSequentialEquivalence:
    """Paper section 2: 'the approach can also be used for the
    circuit-switched network' — with the *static* schedule of 4.1."""

    def drive(self, network_cls, order=None):
        cfg = CircuitConfig(3, 3, n_lanes=2)
        network = network_cls(cfg) if order is None else network_cls(cfg, order=order)
        manager = CircuitManager(network)
        a = manager.setup(0, cfg.index(2, 0))
        b = manager.setup(cfg.index(0, 1), cfg.index(2, 2))
        manager.send(a, [1, 2, 3, 4])
        manager.send(b, [9, 8, 7])
        snapshots = []
        for _ in range(15):
            manager.pump()
            network.step()
            snapshots.append(network.snapshot())
        return network, manager, a, b, snapshots

    def test_sequential_matches_direct(self):
        direct = self.drive(CircuitNetwork)
        sequential = self.drive(SequentialCircuitNetwork)
        assert direct[4] == sequential[4]  # bit-identical every cycle
        assert [e.__dict__ for e in direct[0].ejections] == [
            e.__dict__ for e in sequential[0].ejections
        ]

    def test_any_evaluation_order_is_equivalent(self):
        reference = self.drive(SequentialCircuitNetwork)[4]
        for order in itertools.islice(itertools.permutations(range(9)), 0, 24, 5):
            got = self.drive(SequentialCircuitNetwork, order=list(order))[4]
            assert got == reference

    def test_static_delta_count(self):
        network = self.drive(SequentialCircuitNetwork)[0]
        assert network.metrics.per_cycle == [9] * 15  # one eval per router
