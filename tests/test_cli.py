"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Wolkotte" in out
        assert "rtl" in out and "sequential" in out

    def test_layout(self, capsys):
        assert main(["layout"]) == 0
        out = capsys.readouterr().out
        assert "2112" in out

    def test_layout_fields_and_depth(self, capsys):
        assert main(["layout", "--queue-depth", "2", "--fields"]) == 0
        out = capsys.readouterr().out
        assert "720" in out  # shallow queues
        assert "input_queues" in out

    def test_resources(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "7053" in out and "139" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--width", "3", "--height", "3", "--cycles", "120",
             "--load", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated cycles/s" in out
        assert "delta cycles" in out

    def test_simulate_cycle_engine(self, capsys):
        assert main(
            ["simulate", "--engine", "cycle", "--width", "2", "--height", "2",
             "--cycles", "60"]
        ) == 0
        assert "cycle engine" in capsys.readouterr().out

    def test_simulate_batch_lanes(self, capsys):
        assert main(
            ["simulate", "--engine", "batch", "--lanes", "3", "--width", "3",
             "--height", "3", "--cycles", "80", "--load", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch engine: 3 lanes" in out
        assert "lane 2:" in out and "drained after" in out

    def test_simulate_lanes_need_batch_engine(self, capsys):
        assert main(["simulate", "--lanes", "2", "--cycles", "10"]) == 2
        assert "--lanes requires --engine batch" in capsys.readouterr().err

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.vcd"
        assert main(["trace", "--out", str(out_file), "--cycles", "20"]) == 0
        text = out_file.read_text()
        assert "$enddefinitions" in text
        assert "noc.r0" in text

    def test_trace_bad_filter(self, capsys):
        assert main(["trace", "--filter", "zzz_nothing", "--cycles", "5"]) == 1

    def test_experiments_delegation(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestCliExitCodes:
    """Simulation failures must exit nonzero — scripts and CI gate on
    the exit code, not on scraping stderr."""

    def test_simulate_failure_exits_nonzero(self, monkeypatch, capsys):
        from repro.traffic import NetworkOverloadError
        from repro.traffic.stimuli import TrafficDriver

        def bomb(self, cycles):
            raise NetworkOverloadError("source 3 stalled for 1000 cycles")

        monkeypatch.setattr(TrafficDriver, "run", bomb)
        assert main(
            ["simulate", "--width", "3", "--height", "3", "--cycles", "20"]
        ) == 1
        err = capsys.readouterr().err
        assert "simulation failed" in err
        assert "NetworkOverloadError" in err

    @staticmethod
    def _fake_campaign(recovery_rate, recovery_exhausted=False):
        class _Report:
            detected = 10
            undetected = 0

            def render(self):
                return "fake campaign report"

        report = _Report()
        report.recovery_rate = recovery_rate
        report.recovery_exhausted = recovery_exhausted
        report.detection_rate = 1.0
        return report

    def test_faults_below_min_recovery_exits_nonzero(self, monkeypatch, capsys):
        import repro.faults

        monkeypatch.setattr(
            repro.faults, "run_campaign",
            lambda cfg: self._fake_campaign(recovery_rate=0.5),
        )
        assert main(["faults", "campaign", "--faults", "5"]) == 1
        assert "below the --min-recovery threshold" in capsys.readouterr().err

    def test_faults_min_recovery_threshold_is_tunable(self, monkeypatch, capsys):
        import repro.faults

        monkeypatch.setattr(
            repro.faults, "run_campaign",
            lambda cfg: self._fake_campaign(recovery_rate=0.5),
        )
        assert main(
            ["faults", "campaign", "--faults", "5", "--min-recovery", "0.4"]
        ) == 0

    def test_faults_recovery_exhausted_exits_nonzero(self, monkeypatch, capsys):
        import repro.faults

        monkeypatch.setattr(
            repro.faults, "run_campaign",
            lambda cfg: self._fake_campaign(
                recovery_rate=1.0, recovery_exhausted=True
            ),
        )
        assert main(["faults", "campaign", "--faults", "5"]) == 1
        assert "recovery budget exhausted" in capsys.readouterr().err


@pytest.mark.farm_smoke
class TestFarmCli:
    def test_farm_run_then_cache_hit(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [
            "farm", "run", "--width", "3", "--height", "3", "--cycles", "40",
            "--load", "0.05", "--workers", "2", "--cache", cache,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "completed" in first and "farm report" in first

        assert main(args) == 0  # identical batch: served from cache
        assert "via cache" in capsys.readouterr().out

        assert main(["farm", "status", "--cache", cache]) == 0
        assert "1 entries" in capsys.readouterr().out

        assert main(["farm", "cache", "--cache", cache, "--verify"]) == 0
        assert "entries" in capsys.readouterr().out

    def test_farm_cache_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["farm", "run", "--width", "3", "--height", "3", "--cycles", "30",
             "--workers", "1", "--cache", cache]
        ) == 0
        assert main(["farm", "cache", "--cache", cache, "--clear"]) == 0
        assert "cleared 1 cache entries" in capsys.readouterr().out

    def test_farm_smoke_self_check(self, capsys):
        assert main(["farm", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "farm smoke: OK" in out
