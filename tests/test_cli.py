"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Wolkotte" in out
        assert "rtl" in out and "sequential" in out

    def test_layout(self, capsys):
        assert main(["layout"]) == 0
        out = capsys.readouterr().out
        assert "2112" in out

    def test_layout_fields_and_depth(self, capsys):
        assert main(["layout", "--queue-depth", "2", "--fields"]) == 0
        out = capsys.readouterr().out
        assert "720" in out  # shallow queues
        assert "input_queues" in out

    def test_resources(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "7053" in out and "139" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--width", "3", "--height", "3", "--cycles", "120",
             "--load", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated cycles/s" in out
        assert "delta cycles" in out

    def test_simulate_cycle_engine(self, capsys):
        assert main(
            ["simulate", "--engine", "cycle", "--width", "2", "--height", "2",
             "--cycles", "60"]
        ) == 0
        assert "cycle engine" in capsys.readouterr().out

    def test_simulate_batch_lanes(self, capsys):
        assert main(
            ["simulate", "--engine", "batch", "--lanes", "3", "--width", "3",
             "--height", "3", "--cycles", "80", "--load", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch engine: 3 lanes" in out
        assert "lane 2:" in out and "drained after" in out

    def test_simulate_lanes_need_batch_engine(self, capsys):
        assert main(["simulate", "--lanes", "2", "--cycles", "10"]) == 2
        assert "--lanes requires --engine batch" in capsys.readouterr().err

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.vcd"
        assert main(["trace", "--out", str(out_file), "--cycles", "20"]) == 0
        text = out_file.read_text()
        assert "$enddefinitions" in text
        assert "noc.r0" in text

    def test_trace_bad_filter(self, capsys):
        assert main(["trace", "--filter", "zzz_nothing", "--cycles", "5"]) == 1

    def test_experiments_delegation(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
