"""Deadlock avoidance tests: the torus ring scenario and the dateline fix."""

import pytest

from repro.engines import CycleEngine
from repro.noc import NetworkConfig, Port, RouterConfig
from repro.noc.deadlock import dateline_policy, free_policy, make_policy

from tests.helpers import PacketDriver, be_packet


def ring_net(deadlock_avoidance: bool) -> NetworkConfig:
    """A 6x1 torus: a single east-west ring, the minimal deadlock arena."""
    return NetworkConfig(
        6,
        1,
        topology="torus",
        router=RouterConfig(queue_depth=2, deadlock_avoidance=deadlock_avoidance),
    )


def flood_ring(net, packets_per_node=3, nbytes=40):
    """Every node fires long packets halfway around the ring, saturating
    every east link simultaneously."""
    engine = CycleEngine(net)
    driver = PacketDriver(engine)
    seq = 0
    for src in range(6):
        for _ in range(packets_per_node):
            dest = (src + 3) % 6
            driver.send(be_packet(net, src, dest, nbytes=nbytes, seq=seq % 256), vc=2)
            driver.send(be_packet(net, src, dest, nbytes=nbytes, seq=(seq + 1) % 256), vc=3)
            seq += 2
    return engine, driver


class TestRingDeadlock:
    def test_free_allocation_deadlocks(self):
        """Without the dateline the saturated ring wedges: buffered flits
        stop moving even though nothing was delivered yet."""
        net = ring_net(deadlock_avoidance=False)
        engine, driver = flood_ring(net)
        with pytest.raises(AssertionError, match="did not drain"):
            driver.run_until_drained(max_cycles=3000)
        # Confirm a true deadlock, not just slowness: every router's
        # state is frozen (only the interfaces' access-delay counters
        # keep ticking while their flits wait forever).
        before = [s.state_tuple() for s in engine.states]
        buffered = engine.total_buffered()
        engine.run(50)
        assert [s.state_tuple() for s in engine.states] == before
        assert engine.total_buffered() == buffered > 0

    def test_dateline_drains_the_same_workload(self):
        net = ring_net(deadlock_avoidance=True)
        engine, driver = flood_ring(net)
        driver.run_until_drained(max_cycles=6000)
        expected = 6 * 3 * 2
        assert len(driver.delivered) == expected

    def test_dateline_on_6x6_torus_survives_heavy_load(self):
        net = NetworkConfig(6, 6, router=RouterConfig(queue_depth=2))
        engine = CycleEngine(net)
        driver = PacketDriver(engine)
        seq = 0
        for src in range(36):
            dest = (src + 21) % 36
            for vc in (2, 3):
                driver.send(be_packet(net, src, dest, nbytes=30, seq=seq % 256), vc=vc)
                seq += 1
        driver.run_until_drained(max_cycles=8000)
        assert len(driver.delivered) == 72


class TestDatelinePolicy:
    def setup_method(self):
        self.net = NetworkConfig(4, 4, topology="torus")

    def test_wrap_link_forces_high_class(self):
        # Router at x=3: EAST is the dateline.
        policy = dateline_policy(self.net, self.net.index(3, 1))
        assert policy(int(Port.WEST), 2, int(Port.EAST)) == (3,)

    def test_straight_keeps_class(self):
        policy = dateline_policy(self.net, self.net.index(1, 1))
        assert policy(int(Port.WEST), 2, int(Port.EAST)) == (2,)
        assert policy(int(Port.WEST), 3, int(Port.EAST)) == (3,)

    def test_dimension_turn_resets_to_low(self):
        policy = dateline_policy(self.net, self.net.index(1, 1))
        assert policy(int(Port.WEST), 3, int(Port.SOUTH)) == (2,)

    def test_injection_starts_low(self):
        policy = dateline_policy(self.net, self.net.index(1, 1))
        assert policy(int(Port.LOCAL), 2, int(Port.EAST)) == (2,)

    def test_injection_onto_wrap_is_high(self):
        policy = dateline_policy(self.net, self.net.index(0, 0))
        assert policy(int(Port.LOCAL), 2, int(Port.WEST)) == (3,)

    def test_ejection_keeps_class(self):
        policy = dateline_policy(self.net, self.net.index(1, 1))
        assert policy(int(Port.EAST), 3, int(Port.LOCAL)) == (3,)
        assert policy(int(Port.EAST), 2, int(Port.LOCAL)) == (2,)

    def test_mesh_has_no_wrap_links(self):
        mesh = NetworkConfig(4, 4, topology="mesh")
        policy = dateline_policy(mesh, mesh.index(3, 3))
        assert policy(int(Port.WEST), 2, int(Port.EAST)) == (2,)

    def test_needs_two_be_vcs(self):
        net = NetworkConfig(4, 4, router=RouterConfig(gt_vcs=frozenset({0, 1, 2})))
        with pytest.raises(ValueError):
            dateline_policy(net, 0)

    def test_make_policy_falls_back_to_free(self):
        net = NetworkConfig(4, 4, router=RouterConfig(gt_vcs=frozenset({0, 1, 2})))
        policy = make_policy(net, 0)
        assert policy(int(Port.WEST), 3, int(Port.EAST)) == (3,)

    def test_free_policy_offers_all_be_vcs(self):
        policy = free_policy(RouterConfig())
        assert policy(int(Port.LOCAL), 2, int(Port.EAST)) == (2, 3)
