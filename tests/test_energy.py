"""Tests for the event-based energy model."""

import pytest

from repro.engines import CycleEngine
from repro.noc import NetworkConfig, RouterConfig
from repro.stats.energy import EnergyCoefficients, EnergyProbe
from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random

from tests.helpers import PacketDriver, be_packet


class TestEnergyProbe:
    def test_idle_network_only_leaks(self):
        net = NetworkConfig(3, 3)
        engine = CycleEngine(net)
        probe = EnergyProbe(engine)
        probe.run_instrumented(10)
        counters = probe.counters
        assert counters.buffer_writes == 0
        assert counters.link_traversals == 0
        assert probe.total_energy() == pytest.approx(
            counters.bit_cycles * probe.k.leakage_per_bit_cycle
        )

    def test_event_accounting_single_packet(self):
        """Exact event counts for one packet on a known route."""
        net = NetworkConfig(4, 4, topology="mesh")
        engine = CycleEngine(net)
        driver = PacketDriver(engine)
        hops = 3
        n_flits = 7
        driver.send(be_packet(net, net.index(0, 0), net.index(3, 0)), vc=2)
        probe = EnergyProbe(engine)
        for _ in range(60):
            driver.pump()
            engine.step()
            probe.observe()
        driver.harvest()
        counters = probe.counters
        # Every flit is written once per router on the path (4 routers).
        assert counters.buffer_writes == n_flits * (hops + 1)
        # Every flit traverses 3 links and is read/crossed 4 times
        # (3 link hops + the local ejection).
        assert counters.link_traversals == n_flits * hops
        assert counters.buffer_reads == n_flits * (hops + 1)
        assert counters.crossbar_traversals == n_flits * (hops + 1)

    def test_energy_scales_with_hops(self):
        def energy_for(dest):
            net = NetworkConfig(4, 4, topology="mesh")
            engine = CycleEngine(net)
            driver = PacketDriver(engine)
            driver.send(be_packet(net, 0, dest), vc=2)
            probe = EnergyProbe(
                engine, EnergyCoefficients(leakage_per_bit_cycle=0.0)
            )
            for _ in range(60):
                driver.pump()
                engine.step()
                probe.observe()
            return probe.total_energy()

        net = NetworkConfig(4, 4, topology="mesh")
        assert energy_for(net.index(3, 0)) > energy_for(net.index(1, 0))

    def test_leakage_scales_with_queue_depth(self):
        """The paper's point: buffer energy grows with buffer size even
        at identical traffic."""

        def leakage_for(depth):
            net = NetworkConfig(3, 3, router=RouterConfig(queue_depth=depth))
            engine = CycleEngine(net)
            probe = EnergyProbe(engine)
            probe.run_instrumented(20)
            return probe.breakdown()["leakage"]

        assert leakage_for(4) == pytest.approx(2 * leakage_for(2))

    def test_energy_per_flit(self):
        net = NetworkConfig(3, 3)
        engine = CycleEngine(net)
        be = BernoulliBeTraffic(net, 0.06, uniform_random(net), seed=8)
        driver = TrafficDriver(engine, be=be)
        probe = EnergyProbe(engine)
        for _ in range(200):
            driver.generate(engine.cycle)
            driver.pump()
            engine.step()
            probe.observe()
        assert probe.energy_per_delivered_flit() > 0
        parts = probe.breakdown()
        assert sum(parts.values()) == pytest.approx(probe.total_energy())

    def test_heterogeneous_buffer_bits(self):
        net = NetworkConfig(
            3, 3,
            router=RouterConfig(queue_depth=2),
            router_overrides=((4, RouterConfig(queue_depth=8)),),
        )
        probe = EnergyProbe(CycleEngine(net))
        homog = EnergyProbe(CycleEngine(NetworkConfig(3, 3, router=RouterConfig(queue_depth=2))))
        assert probe._buffer_bits > homog._buffer_bits
