"""Smoke tests: every example script runs and prints what it promises."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=420, scale="0.15"):
    env = dict(os.environ, REPRO_SCALE=scale)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "GT stream" in out
    assert "network drained" in out
    assert "total latency" in out


def test_engine_equivalence():
    out = run_example("engine_equivalence.py")
    assert "BIT-IDENTICAL" in out
    assert "cycles/s" in out


def test_sequential_simulation():
    out = run_example("sequential_simulation.py")
    assert "static schedule" in out
    assert "HBR" in out
    assert "re-evaluations" in out


def test_platform_cosim():
    out = run_example("platform_cosim.py")
    assert "Generate stimuli (ARM)" in out
    assert "simulated cycles/s" in out
    assert "GT latency" in out


def test_latency_study():
    out = run_example("latency_study.py")
    assert "Figure 1" in out
    assert "guarantee bound" in out


def test_design_exploration():
    out = run_example("design_exploration.py")
    assert "Buffer-size exploration" in out
    assert "1440" in out  # the Table-1 default buffer bits appear
