"""Smoke test for the section-7.1 generality example."""

from tests.test_examples import run_example


def test_other_parallel_systems():
    out = run_example("other_parallel_systems.py")
    assert "circuit-switched" in out
    assert "systolic" in out
    assert "matches numpy: True" in out
    assert "0x1111" in out
