"""Chaos suite for the fault-tolerant job farm (:mod:`repro.farm`).

Every injected failure mode — crash, hang, wedge, poison, corrupt cache
entry — must end in one of exactly two terminal states: the job
completes with a payload byte-identical to a direct in-process run, or
it is quarantined with its full failure record.  No silent loss, no
hung farm, no leaked worker processes (the conftest leak fixture
asserts the latter after every test).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.farm import (
    CallableJob,
    ChaosJob,
    FarmJobError,
    FarmSupervisor,
    JobQueue,
    ResultCache,
    SimulateJob,
    canonical_key,
    farm_map,
    payload_digest,
    run_smoke,
)
from repro.farm import jobs
from repro.farm.jobs import FailureRecord, JobState
from repro.faults.policy import RetryPolicy
from repro.platform.logs import TelemetryCounters

pytestmark = [pytest.mark.farm_smoke, pytest.mark.timeout(120)]

#: fast-retry policy so chaos tests never sleep for real backoff.
FAST = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.05)

SMALL = SimulateJob(width=3, height=3, cycles=50, load=0.10, seed=0xBEEF)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom({x})")


# ---------------------------------------------------------------------------
# content addressing
# ---------------------------------------------------------------------------

class TestCanonicalKeys:
    def test_key_is_stable_and_field_sensitive(self):
        assert canonical_key(SMALL) == canonical_key(
            SimulateJob(width=3, height=3, cycles=50, load=0.10, seed=0xBEEF)
        )
        assert canonical_key(SMALL) != canonical_key(
            SimulateJob(width=3, height=3, cycles=50, load=0.10, seed=0xBEE0)
        )
        assert canonical_key(SMALL) != canonical_key(
            SimulateJob(width=3, height=3, cycles=51, load=0.10, seed=0xBEEF)
        )

    def test_callable_key_covers_the_item(self):
        a = CallableJob.from_callable(_square, 3)
        b = CallableJob.from_callable(_square, 4)
        assert canonical_key(a) != canonical_key(b)
        assert canonical_key(a) == canonical_key(CallableJob.from_callable(_square, 3))

    def test_lambdas_are_rejected(self):
        with pytest.raises(FarmJobError):
            CallableJob.from_callable(lambda x: x, 1)

    def test_payload_digest_json_and_fallback(self):
        assert payload_digest({"a": 1}) == payload_digest({"a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})
        # non-JSON payloads fall back to pickle, still deterministic
        assert payload_digest({1, 2, 3}) == payload_digest({1, 2, 3})


# ---------------------------------------------------------------------------
# retry policy + queue
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_budget_counts_retries_not_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=1.0, jitter=0.25)
        for attempt in (1, 2, 3, 8):
            d1 = policy.delay(attempt, token="job-x")
            d2 = policy.delay(attempt, token="job-x")
            assert d1 == d2
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert raw * 0.75 <= d1 <= raw * 1.25
        # different tokens de-synchronise
        assert policy.delay(1, token="a") != policy.delay(1, token="b")

    def test_queue_backoff_gate_and_quarantine(self):
        queue = JobQueue(RetryPolicy(max_retries=1, base_delay=10.0, jitter=0.0))
        state = JobState(spec=SMALL, key="k")
        queue.add(state)
        assert queue.next_ready(now=0.0) is state
        verdict = queue.fail(state, FailureRecord("exception", "x", 1), now=100.0)
        assert verdict == "retry"
        assert queue.next_ready(now=100.0) is None  # backoff gate holds
        assert queue.next_ready(now=200.0) is state
        verdict = queue.fail(state, FailureRecord("exception", "y", 2), now=200.0)
        assert verdict == "quarantine"
        assert state.attempts == 2
        assert [f.detail for f in state.failures] == ["x", "y"]


# ---------------------------------------------------------------------------
# the executors themselves
# ---------------------------------------------------------------------------

class TestExecutors:
    def test_run_simulate_matches_a_direct_driver_run(self):
        from repro.engines import make_engine
        from repro.noc import NetworkConfig, RouterConfig
        from repro.stats import PacketLatencyTracker
        from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random

        payload = jobs.run_simulate(SMALL)

        net = NetworkConfig(3, 3, router=RouterConfig(queue_depth=4))
        engine = make_engine("sequential", net)
        be = BernoulliBeTraffic(net, 0.10, uniform_random(net), seed=0xBEEF)
        driver = TrafficDriver(engine, be=be)
        tracker = PacketLatencyTracker(net)
        driver.attach_tracker(tracker)
        driver.run(50)
        driver.be = None
        driver.drain()
        tracker.collect(engine)

        assert payload["flits_injected"] == len(engine.injections)
        assert payload["flits_ejected"] == len(engine.ejections)
        assert payload["packets"] == tracker.stats().count

    def test_execution_is_bit_identical_across_runs(self):
        assert jobs.execute(SMALL) == jobs.execute(SMALL)

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        spec = SimulateJob(
            width=3, height=3, cycles=60, load=0.10, seed=0x5EED,
            checkpoint_every=20,
        )
        reference = jobs.run_simulate(spec)  # fresh, uninterrupted

        scratch = str(tmp_path)
        # die mid-run like a killed worker: a checkpoint at cycle 40
        # exists, the job never finished
        with pytest.raises(FarmJobError):
            jobs.run_simulate(spec, scratch=scratch, abort_at_cycle=45)
        assert os.path.exists(os.path.join(scratch, f"{canonical_key(spec)}.ckpt"))

        resumed = jobs.run_simulate(spec, scratch=scratch)
        assert resumed == reference
        # the checkpoint is consumed on success
        assert not os.path.exists(os.path.join(scratch, f"{canonical_key(spec)}.ckpt"))

    def test_corrupt_checkpoint_means_start_over(self, tmp_path):
        spec = SimulateJob(
            width=3, height=3, cycles=40, load=0.10, seed=0x5EED,
            checkpoint_every=10,
        )
        reference = jobs.run_simulate(spec)
        path = tmp_path / f"{canonical_key(spec)}.ckpt"
        path.write_bytes(b"not a pickle")
        assert jobs.run_simulate(spec, scratch=str(tmp_path)) == reference
        corpses = [p for p in os.listdir(tmp_path) if ".corrupt-" in p]
        assert len(corpses) == 1


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("ab" * 32) is None
        assert cache.put("ab" * 32, {"x": 1}, spec=SMALL)
        assert cache.get("ab" * 32) == {"x": 1}
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_atomic_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("cd" * 32, {"y": 2})
        strays = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if ".tmp." in name
        ]
        assert strays == []

    @pytest.mark.parametrize(
        "damage",
        [
            b"",  # empty file (torn create)
            b'{"key": "truncat',  # truncated write
            b"\x00\xff garbage",  # not JSON at all
            b"[1, 2, 3]\n",  # JSON but not an entry object
        ],
    )
    def test_corrupt_entries_are_evicted_never_served(self, tmp_path, damage):
        cache = ResultCache(str(tmp_path))
        key = "ef" * 32
        cache.put(key, {"z": 3})
        with open(cache.path_for(key), "wb") as stream:
            stream.write(damage)
        assert cache.get(key) is None
        corpses = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if ".corrupt-" in name
        ]
        assert len(corpses) == 1  # evidence preserved
        # the slot is free again: a rebuild works
        assert cache.put(key, {"z": 3})
        assert cache.get(key) == {"z": 3}

    def test_payload_tampering_is_detected_by_digest(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "09" * 32
        cache.put(key, {"latency": 10})
        path = cache.path_for(key)
        with open(path) as stream:
            entry = json.load(stream)
        entry["payload"]["latency"] = 7  # flip a result bit, keep valid JSON
        with open(path, "w") as stream:
            json.dump(entry, stream)
        assert cache.get(key) is None
        assert cache.evictions == 1

    def test_unserializable_payloads_are_refused(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert not cache.put("aa" * 32, {"bad": object()})
        assert cache.stats()["entries"] == 0

    def test_verify_sweeps_corrupt_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("11" * 32, {"a": 1})
        cache.put("22" * 32, {"b": 2})
        with open(cache.path_for("22" * 32), "w") as stream:
            stream.write("garbage")
        report = cache.verify()
        assert report == {"checked": 2, "evicted": 1}
        assert cache.entries() == ["11" * 32]


# ---------------------------------------------------------------------------
# the supervisor under chaos
# ---------------------------------------------------------------------------

class TestSupervisor:
    def test_jobs_complete_and_repeat_hits_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with FarmSupervisor(workers=2, cache=cache, policy=FAST) as farm:
            first = farm.submit([SMALL])
            assert first.ok and first.completed[0].payload == jobs.execute(SMALL)
            dispatches = farm.telemetry.get("dispatches")
            again = farm.submit([SMALL])
            assert again.completed[0].from_cache
            assert again.completed[0].payload == first.completed[0].payload
            assert farm.telemetry.get("dispatches") == dispatches

    def test_duplicate_specs_in_one_batch_run_once(self, tmp_path):
        with FarmSupervisor(workers=2, policy=FAST) as farm:
            report = farm.submit([SMALL, SMALL, SMALL])
            assert len(report.order) == 3
            assert len(report.completed) == 1
            assert farm.telemetry.get("duplicates_coalesced") == 2
            assert len(report.payloads()) == 3
            assert report.payloads()[0] == report.payloads()[2]

    def test_crashed_worker_is_replaced_and_the_job_retried(self, tmp_path):
        with FarmSupervisor(workers=2, policy=FAST, job_timeout=30.0,
                            scratch=str(tmp_path)) as farm:
            spec = ChaosJob(mode="crash-once", token="c1", scratch=str(tmp_path))
            report = farm.submit([spec])
            if farm.mode != "processes":
                pytest.skip("no process spawning in this environment")
            outcome = report.completed[0]
            assert outcome.payload == {"ok": True, "token": "c1", "recovered": True}
            assert outcome.attempts == 2
            assert [f.kind for f in outcome.failures] == ["worker-died"]
            assert farm.telemetry.get("workers_replaced") >= 1

    def test_hung_job_times_out_is_killed_and_quarantined(self, tmp_path):
        with FarmSupervisor(workers=1, policy=RetryPolicy(max_retries=1,
                                                          base_delay=0.01),
                            job_timeout=0.8, scratch=str(tmp_path)) as farm:
            report = farm.submit([ChaosJob(mode="hang", token="h1", seconds=600)])
            if farm.mode != "processes":
                pytest.skip("no process spawning in this environment")
            outcome = report.quarantined[0]
            assert [f.kind for f in outcome.failures] == ["timeout", "timeout"]
            assert farm.telemetry.get("timeouts") == 2
            # the farm survives: a following job completes normally
            ok = farm.submit([ChaosJob(mode="ok", token="after")])
            assert ok.completed and ok.completed[0].payload["ok"]

    def test_wedged_worker_is_detected_by_heartbeat(self, tmp_path):
        with FarmSupervisor(workers=1, policy=RetryPolicy(max_retries=0),
                            job_timeout=300.0, heartbeat_interval=0.1,
                            heartbeat_timeout=1.0, scratch=str(tmp_path)) as farm:
            report = farm.submit([ChaosJob(mode="wedge", token="w1", seconds=600)])
            if farm.mode != "processes":
                pytest.skip("no process spawning in this environment")
            outcome = report.quarantined[0]
            assert [f.kind for f in outcome.failures] == ["heartbeat"]
            assert farm.telemetry.get("heartbeat_losses") == 1

    def test_poison_job_quarantined_with_full_history(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with FarmSupervisor(workers=2, cache=cache, policy=FAST,
                            scratch=str(tmp_path)) as farm:
            report = farm.submit([ChaosJob(mode="fail", token="p1")])
            outcome = report.quarantined[0]
            # 1 attempt + max_retries retries, every one recorded
            assert len(outcome.failures) == FAST.max_retries + 1
            assert all(f.kind == "exception" for f in outcome.failures)
            assert [f.attempt for f in outcome.failures] == [1, 2, 3]
        records = cache.quarantined_jobs()
        assert len(records) == 1
        assert len(records[0]["failures"]) == FAST.max_retries + 1
        assert not report.ok

    def test_inline_fallback_when_processes_unavailable(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            FarmSupervisor,
            "_spawn",
            lambda self: (_ for _ in ()).throw(OSError("no processes here")),
        )
        cache = ResultCache(str(tmp_path))
        with FarmSupervisor(workers=2, cache=cache, policy=FAST) as farm:
            report = farm.submit([SMALL, ChaosJob(mode="fail", token="pf")])
            assert farm.mode == "inline"
            assert report.completed[0].payload == jobs.execute(SMALL)
            assert len(report.quarantined) == 1
            assert farm.telemetry.get("inline_fallbacks") == 1

    def test_cache_only_mode_serves_hits_reports_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(canonical_key(SMALL), jobs.execute(SMALL), spec=SMALL)
        other = SimulateJob(width=3, height=3, cycles=30, load=0.05, seed=0x0DD)
        with FarmSupervisor(workers=0, cache=cache) as farm:
            report = farm.submit([SMALL, other])
            assert farm.mode == "cache-only"
            assert report.completed[0].from_cache
            assert report.unavailable[0].spec is other
            assert not report.ok

    def test_chaos_batch_no_silent_loss(self, tmp_path):
        """The acceptance sweep: good, flaky and poison jobs in one
        batch — every job ends completed-byte-identical or quarantined
        with records."""
        cache = ResultCache(str(tmp_path / "cache"))
        scratch = str(tmp_path)
        specs = [
            SMALL,
            ChaosJob(mode="flaky", token="fx", scratch=scratch),
            ChaosJob(mode="fail", token="px"),
            ChaosJob(mode="ok", token="okx"),
        ]
        with FarmSupervisor(workers=2, cache=cache, policy=FAST,
                            job_timeout=30.0, scratch=scratch) as farm:
            report = farm.submit(specs)
        assert len(report.completed) + len(report.quarantined) == len(specs)
        by_key = report.outcomes
        assert by_key[canonical_key(SMALL)].payload == jobs.execute(SMALL)
        assert by_key[canonical_key(specs[1])].payload["recovered"]
        assert by_key[canonical_key(specs[2])].status == "quarantined"
        assert by_key[canonical_key(specs[2])].failures


# ---------------------------------------------------------------------------
# client layer + sweep integration
# ---------------------------------------------------------------------------

class TestClient:
    def test_farm_map_matches_serial_map(self):
        items = list(range(8))
        assert farm_map(_square, items, workers=2, policy=FAST) == [
            _square(x) for x in items
        ]

    def test_farm_map_raises_on_poison_points(self):
        with pytest.raises(FarmJobError) as info:
            farm_map(_boom, [1], workers=1,
                     policy=RetryPolicy(max_retries=0, base_delay=0.0))
        assert info.value.failures
        assert "boom(1)" in info.value.failures[-1].detail

    def test_parallel_map_routes_through_the_farm(self, monkeypatch):
        from repro.experiments.parallel import farm_enabled, parallel_map

        monkeypatch.setenv("REPRO_FARM", "1")
        assert farm_enabled()
        items = list(range(6))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_parallel_map_farm_off_by_default(self, monkeypatch):
        from repro.experiments.parallel import farm_enabled

        monkeypatch.delenv("REPRO_FARM", raising=False)
        assert not farm_enabled()

    def test_run_smoke_self_check_passes(self):
        lines = []
        assert run_smoke(out=lines.append)
        assert any("PASS" in line for line in lines)
        assert not any("FAIL " in line for line in lines)


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------

class TestTelemetry:
    def test_counters_scope_and_snapshot(self):
        counters = TelemetryCounters()
        counters.incr("retries")
        counters.incr("retries", 2)
        counters.incr("dispatches", scope="worker[1]")
        assert counters.get("retries") == 3
        assert counters.get("dispatches", scope="worker[1]") == 1
        assert counters.get("dispatches") == 0
        snap = counters.snapshot()
        assert snap[""]["retries"] == 3
        assert snap["worker[1]"]["dispatches"] == 1
        assert "worker[1]" in counters.render()
