"""Fault injection: the protocol checks must catch corrupted state.

A bit-accurate simulator is a debugging instrument; these tests verify
that when the simulated hardware is driven outside its contract —
corrupted link words, overfilled queues, malformed flit streams — the
golden model fails loudly instead of silently producing wrong results.
"""

import pytest

from repro.engines import CycleEngine
from repro.noc import Network, NetworkConfig, RouterConfig
from repro.noc.flit import Flit, FlitType, Header
from repro.noc.packet import ProtocolError as ReassemblyError
from repro.noc.packet import Reassembler
from repro.noc.router import ProtocolError, RouterInputs

from tests.helpers import PacketDriver, be_packet


class TestRouterFaults:
    def setup_method(self):
        self.cfg = NetworkConfig(3, 3)
        self.network = Network(self.cfg)

    def test_forged_flit_to_full_queue_detected(self):
        """Injecting a forward word that ignores the room mask trips the
        overflow assertion."""
        state = self.network.states[4]
        cfg = self.cfg.router
        # Fill queue (LOCAL port, VC 2) to the brim by hand.
        queue = state.queues[2]
        for i in range(cfg.queue_depth):
            queue.push(Flit(FlitType.BODY, i).encode())
        word = (2 << (cfg.data_width + 2)) | Flit(FlitType.BODY, 0xFF).encode()
        inputs = RouterInputs(
            fwd=[word, 0, 0, 0, 0], room=[0xF] * 5
        )
        router = self.network.routers[4]
        with pytest.raises(ProtocolError, match="overflow"):
            router.next_state(state, inputs)

    def test_grant_to_empty_queue_detected(self):
        state = self.network.states[0]
        with pytest.raises(ProtocolError, match="underflow|empty"):
            state.queues[0].pop()

    def test_gt_flit_on_be_vc_detected(self):
        state = self.network.states[0]
        gt_head = Header(1, 1, gt=True).head_flit().encode()
        state.queues[3].push(gt_head)  # VC 3 is BE-only
        router = self.network.routers[0]
        inputs = RouterInputs(fwd=[0] * 5, room=[0xF] * 5)
        with pytest.raises(ProtocolError, match="GT head on non-GT VC"):
            router.next_state(state, inputs)


class TestStreamFaults:
    def setup_method(self):
        self.cfg = NetworkConfig(3, 3)

    def test_body_without_head(self):
        sink = Reassembler(self.cfg)
        with pytest.raises(ReassemblyError, match="without a HEAD"):
            sink.push(0, Flit(FlitType.BODY, 1), 0)

    def test_head_interrupting_open_packet(self):
        sink = Reassembler(self.cfg)
        sink.push(1, Header(1, 1).head_flit(), 0)
        with pytest.raises(ReassemblyError, match="HEAD while a packet is open"):
            sink.push(1, Header(2, 2).head_flit(), 1)

    def test_tail_with_no_body(self):
        sink = Reassembler(self.cfg)
        sink.push(0, Header(1, 1).head_flit(), 0)
        with pytest.raises(ReassemblyError, match="no body"):
            sink.push(0, Flit(FlitType.TAIL, 0), 1)

    def test_open_vcs_reported(self):
        sink = Reassembler(self.cfg)
        sink.push(2, Header(1, 1).head_flit(), 0)
        assert sink.open_vcs == (2,)


class TestCorruptedLinkMemory:
    def test_corrupted_vc_label_misroutes_but_is_caught(self):
        """Flipping the VC label of an in-flight word makes a BODY flit
        land on a VC with no open packet — caught at reassembly."""
        cfg = NetworkConfig(2, 2)
        engine = CycleEngine(cfg)
        driver = PacketDriver(engine)
        driver.send(be_packet(cfg, 0, 1, nbytes=20), vc=2)
        # advance until flits flow on link 0->1
        for _ in range(6):
            driver.pump()
            engine.step()
        with pytest.raises((ReassemblyError, ProtocolError, AssertionError)):
            # corrupt the head register of a mid-packet queue: swap its
            # VC by re-injecting the stream on the other VC at the sink
            for _ in range(40):
                driver.pump()
                # corrupt: move a buffered flit to the wrong VC queue
                state = engine.states[1]
                src_q = state.queues[4 * 4 + 2]  # WEST port? ensure index valid
                dst_q = state.queues[4 * 4 + 3]
                if src_q.count > 0 and dst_q.count < dst_q.depth:
                    dst_q.push(src_q.pop())
                engine.step()
            driver.run_until_drained(max_cycles=200)


class TestDeterminism:
    def test_identical_runs_identical_logs(self):
        def run_once():
            cfg = NetworkConfig(4, 4)
            engine = CycleEngine(cfg)
            from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random

            be = BernoulliBeTraffic(cfg, 0.08, uniform_random(cfg), seed=99)
            driver = TrafficDriver(engine, be=be)
            driver.run(150)
            return (
                [r.__dict__ for r in engine.injections],
                [r.__dict__ for r in engine.ejections],
                engine.snapshot(),
            )

        assert run_once() == run_once()
