"""Fault injection, detection (parity + watchdog) and rollback recovery.

Covers the robustness extension end to end: the parity property of the
packed state memory, the livelock watchdog, link-memory fault modes,
the controller's checkpoint/rollback machinery, and the seeded campaign
runner with its acceptance thresholds (100% detection for
parity-protected state words, >= 90% rollback recovery, deterministic
under a fixed seed).
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import parity
from repro.faults import (
    CampaignConfig,
    ConvergenceError,
    FaultDomain,
    FaultKind,
    LivelockError,
    ParityError,
    RecoveryExhaustedError,
    run_campaign,
)
from repro.faults.model import FaultInjector, FaultModel
from repro.noc import NetworkConfig
from repro.noc.routing import RoutingTable, UnroutableError
from repro.platform.controller import SimulationController
from repro.platform.cyclic_buffer import (
    BufferOverrunError,
    BufferUnderrunError,
    CyclicBuffer,
)
from repro.seqsim import (
    ConvergenceWatchdog,
    PackedStateMemory,
    RoundRobinScheduler,
    SequentialNetwork,
)
from repro.traffic import BernoulliBeTraffic, uniform_random

from tests.helpers import PacketDriver, be_packet


def make_engine(width=3, height=3, topology="torus", **kw):
    cfg = NetworkConfig(width, height, topology=topology)
    return SequentialNetwork(cfg, RoutingTable(cfg), packed=True, **kw)


def warm_up(engine, cycles=10, n_packets=6):
    driver = PacketDriver(engine)
    cfg = engine.cfg
    for seq in range(n_packets):
        driver.send(
            be_packet(cfg, seq % cfg.n_routers, (seq * 5 + 2) % cfg.n_routers,
                      nbytes=12, seq=seq),
            vc=2,
        )
    driver.run(cycles)
    return driver


# ---------------------------------------------------------------------------
# parity: the detection invariant
# ---------------------------------------------------------------------------
class TestParity:
    @given(word=st.integers(min_value=0, max_value=(1 << 256) - 1),
           bit=st.integers(min_value=0, max_value=255))
    def test_single_bit_flip_always_changes_parity(self, word, bit):
        assert parity(word ^ (1 << bit)) != parity(word)

    @given(addr=st.integers(min_value=0, max_value=8),
           bit=st.integers(min_value=0, max_value=63),
           word=st.integers(min_value=0, max_value=(1 << 64) - 1),
           bank=st.sampled_from(["current", "next"]))
    @settings(max_examples=60)
    def test_memory_detects_any_single_bit_flip(self, addr, bit, word, bank):
        mem = PackedStateMemory(depth=9, width=64)
        mem.initialize(addr, word)
        mem.inject_fault(addr, 1 << bit, bank=bank)
        bad = mem.verify()
        assert any(a == addr for _bank, a in bad)
        with pytest.raises(ParityError):
            mem.swap()

    def test_every_bit_of_a_real_router_core_word(self):
        """Exhaustive: flipping ANY single bit of a real packed
        router-core word is caught by the parity check."""
        engine = make_engine(2, 2)
        warm_up(engine, cycles=6)
        width = engine.state_word_width
        mem = engine.statemem
        for bit in range(width):
            mem.inject_fault(1, 1 << bit)
            bad = mem.verify()
            assert bad == [(mem.current_bank, 1)], f"bit {bit} escaped parity"
            mem.inject_fault(1, 1 << bit)  # flip back: word is clean again
            assert mem.verify() == []

    def test_even_weight_burst_escapes_parity(self):
        """Parity's documented blind spot: even-weight corruptions."""
        mem = PackedStateMemory(depth=2, width=32)
        mem.initialize(0, 0x1234)
        mem.inject_fault(0, 0b11)  # two bits: even weight
        assert mem.verify() == []

    def test_legal_writes_maintain_parity(self):
        mem = PackedStateMemory(depth=4, width=32)
        for address in range(4):
            mem.initialize(address, 0xDEAD << address)
        for cycle in range(6):
            for address in range(4):
                mem.write(address, (0xBEEF * (cycle + 1) + address) & 0xFFFFFFFF)
            mem.swap()  # raises if any parity went stale
        assert mem.parity_checks == 6

    def test_parity_error_payload(self):
        mem = PackedStateMemory(depth=4, width=16)
        mem.inject_fault(2, 1 << 3)
        mem.inject_fault(3, 1 << 1, bank="next")
        with pytest.raises(ParityError) as excinfo:
            mem.check_parity()
        assert excinfo.value.addresses == (2, 3)

    def test_unprotected_memory_skips_checks(self):
        mem = PackedStateMemory(depth=2, width=16, parity_protected=False)
        mem.inject_fault(0, 1)
        mem.swap()  # no ParityError


# ---------------------------------------------------------------------------
# scheduler guards + watchdog
# ---------------------------------------------------------------------------
class TestSchedulerGuards:
    def test_zero_units_rejected(self):
        with pytest.raises(ValueError, match="at least one unit"):
            RoundRobinScheduler(0)

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError, match="n_units=-3"):
            RoundRobinScheduler(-3)

    def test_watchdog_zero_units_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceWatchdog(0)


class TestWatchdog:
    def test_flap_fault_trips_livelock_with_diagnosis(self):
        engine = make_engine(3, 3, watchdog_factor=8)
        warm_up(engine, cycles=4)
        fwd_name, room_name = engine.install_flap_fault(4, 1)
        with pytest.raises(LivelockError) as excinfo:
            for _ in range(4):
                engine.step()
        err = excinfo.value
        # The error names the routers that never settled...
        assert err.unstable_units
        assert all(0 <= u < 9 for u in err.unstable_units)
        assert "unstable routers" in str(err)
        # ...and singles out the flapping wires.
        assert set(err.suspect_wires) == {fwd_name, room_name}
        assert err.deltas > err.limit
        # LivelockError is a ConvergenceError: legacy handlers still work.
        assert isinstance(err, ConvergenceError)

    def test_fault_free_run_never_trips(self):
        engine = make_engine(3, 3)
        warm_up(engine, cycles=30)
        assert engine.watchdog.trips == 0

    def test_quarantine_stops_the_flapping(self):
        engine = make_engine(3, 3, watchdog_factor=8)
        warm_up(engine, cycles=4)
        names = engine.install_flap_fault(4, 1)
        with pytest.raises(LivelockError):
            engine.step()
        quarantined = engine.quarantine_wires(names)
        assert quarantined  # physical links taken out of service
        assert engine.quarantined_links
        for _ in range(20):
            engine.step()  # settles again: the flap is gone


# ---------------------------------------------------------------------------
# link memory fault modes
# ---------------------------------------------------------------------------
class TestLinkFaults:
    def test_stuck_at_forces_bit_on_every_write(self):
        engine = make_engine(2, 2)
        links = engine.links
        wid = 0
        links.set_stuck(wid, 1, 1)  # bit 1 stuck at 1
        links.write_wire(wid, 0)
        assert links.values[wid] == 0b10
        links.write_wire(wid, 0b101)
        assert links.values[wid] == 0b111

    def test_quarantined_wire_drops_writes(self):
        engine = make_engine(2, 2)
        links = engine.links
        links.quarantine(3, frozen_value=0)
        links.write_wire(3, 0x7)
        assert links.values[3] == 0

    def test_transient_is_absorbed_by_reconvergence(self):
        """The HBR protocol's self-healing: a transient wire flip is
        rewritten by its (uncorrupted) writer and the reader
        re-evaluates, so the run converges to the fault-free result."""
        a = make_engine(3, 3)
        b = make_engine(3, 3)
        drv_a = warm_up(a, cycles=8)
        drv_b = warm_up(b, cycles=8)
        assert a.snapshot() == b.snapshot()
        b.inject_link_fault("fwd:0.1", 2)
        for _ in range(12):
            a.step()
            b.step()
        assert a.snapshot() == b.snapshot()

    def test_fault_free_property_gates_fast_path(self):
        engine = make_engine(2, 2)
        assert engine.links.fault_free
        engine.links.set_flaky(0)
        assert not engine.links.fault_free


# ---------------------------------------------------------------------------
# cyclic buffer satellites
# ---------------------------------------------------------------------------
class TestCyclicBufferGuards:
    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError, match="got 0"):
            CyclicBuffer(0, "stim")
        with pytest.raises(ValueError, match="got -2"):
            CyclicBuffer(-2)

    def test_overrun_message_carries_pointer_state(self):
        buf = CyclicBuffer(2, "stim[0,1]")
        buf.write(0, 10)
        buf.write(1, 11)
        with pytest.raises(BufferOverrunError) as excinfo:
            buf.write(2, 12)
        message = str(excinfo.value)
        assert "stim[0,1]" in message
        assert "rd=0" in message and "wr=2" in message
        assert "count=2" in message and "capacity=2" in message

    def test_underrun_message_carries_pointer_state(self):
        buf = CyclicBuffer(3, "out[5]")
        buf.write(0, 1)
        buf.read()
        with pytest.raises(BufferUnderrunError) as excinfo:
            buf.read()
        message = str(excinfo.value)
        assert "out[5]" in message
        assert "rd=1" in message and "wr=1" in message and "read=1" in message

    def test_inject_fault_corrupts_pending_entry(self):
        buf = CyclicBuffer(4)
        buf.write(0, 0b1000)
        buf.write(1, 0b0110)
        buf.inject_fault(1, 0b0011)
        assert buf.read().payload == 0b1000
        assert buf.read().payload == 0b0101

    def test_inject_fault_range_checked(self):
        buf = CyclicBuffer(4)
        buf.write(0, 1)
        with pytest.raises(IndexError):
            buf.inject_fault(1, 1)


# ---------------------------------------------------------------------------
# routing around quarantined links
# ---------------------------------------------------------------------------
class TestQuarantineRouting:
    def test_routes_avoid_blocked_link(self):
        cfg = NetworkConfig(4, 4, topology="torus")
        table = RoutingTable(cfg)
        blocked = {(5, int(table.port(5, 6)))}
        table.recompute_avoiding(blocked)
        for dest in range(cfg.n_routers):
            for src in range(cfg.n_routers):
                links = table.links_on_path(src, dest)
                assert not (set((r, int(p)) for r, p in links) & blocked)

    def test_disconnection_raises_unroutable(self):
        cfg = NetworkConfig(3, 3, topology="torus")
        table = RoutingTable(cfg)
        # Block every link *into* router 4 (all neighbours' ports to it).
        from repro.noc.config import Port
        from repro.noc.topology import Topology

        topo = Topology(cfg)
        blocked = set()
        for p in range(1, cfg.router.n_ports):
            nb = topo.neighbor(4, Port(p))
            blocked.add((nb, int(Port(p).opposite)))
        with pytest.raises(UnroutableError):
            table.recompute_avoiding(blocked)


# ---------------------------------------------------------------------------
# controller rollback recovery
# ---------------------------------------------------------------------------
def make_controller(seed=9, checkpoint_interval=1, **kw):
    cfg = NetworkConfig(3, 3, topology="torus")
    engine = SequentialNetwork(cfg, RoutingTable(cfg), packed=True)
    be = BernoulliBeTraffic(cfg, load=0.10, pattern=uniform_random(cfg), seed=seed)
    controller = SimulationController(
        engine, be=be, period=8, checkpoint_interval=checkpoint_interval, **kw
    )
    return controller


class TestRollbackRecovery:
    def test_transient_recovered_bit_exactly(self):
        """A detected-and-rolled-back transient leaves the run
        bit-identical to a fault-free run of the same seed."""
        clean = make_controller()
        faulty = make_controller()

        def strike(engine, fired=[]):
            if engine.cycle == 21 and not fired:
                fired.append(True)
                engine.inject_state_fault(4, 100)

        faulty.engine.pre_step_hooks.append(strike)
        report_clean = clean.run(48)
        report_faulty = faulty.run(48)

        assert report_faulty.fault_detections == 1
        assert report_faulty.rollbacks >= 1
        assert report_faulty.recoveries == 1
        assert not report_faulty.recovery_exhausted
        assert report_faulty.recovery_deltas > 0
        # Bit accuracy survives the rollback: identical architectural
        # state and identical delivered flits.  (Ejection *timestamps*
        # may shift: the retry's halved period re-batches best-effort
        # stimuli, a platform artifact rather than architectural state.)
        assert faulty.engine.snapshot() == clean.engine.snapshot()
        assert [
            (r.router, r.vc, r.flit_word) for r in faulty.engine.ejections
        ] == [(r.router, r.vc, r.flit_word) for r in clean.engine.ejections]
        # The retry offsets the period grid, so the faulty run may
        # round up to a later boundary — but never finishes early.
        assert report_faulty.cycles >= report_clean.cycles

    def test_recovery_disabled_propagates_fault(self):
        controller = make_controller(checkpoint_interval=0)

        def strike(engine, fired=[]):
            if engine.cycle == 10 and not fired:
                fired.append(True)
                engine.inject_state_fault(0, 7)

        controller.engine.pre_step_hooks.append(strike)
        with pytest.raises(ParityError):
            controller.run(32)

    def test_persistent_fault_exhausts_retries(self):
        """A fault re-injected on every attempt defeats rollback: the
        controller gives up with RecoveryExhaustedError."""
        controller = make_controller(max_retries=2)

        def strike(engine):
            if engine.cycle >= 10:
                engine.inject_state_fault(2, 5)

        controller.engine.pre_step_hooks.append(strike)
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            controller.run(64)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, ParityError)
        assert controller.recovery_exhausted

    def test_backoff_halves_period_on_retry(self):
        controller = make_controller(max_retries=3)
        periods_seen = []

        def strike(engine, fired=[]):
            periods_seen.append(controller.period)
            if engine.cycle == 16 and not fired:
                fired.append(True)
                engine.inject_state_fault(1, 3)

        controller.engine.pre_step_hooks.append(strike)
        controller.run(48)
        assert 4 in periods_seen  # 8 -> 4 after the rollback
        assert controller.period == 8  # restored after clean period

    def test_livelock_quarantine_reroutes_and_recovers(self):
        controller = make_controller(max_retries=4)
        engine = controller.engine

        def strike(eng, fired=[]):
            if eng.cycle == 16 and not fired:
                fired.append(True)
                eng.install_flap_fault(4, 1)

        engine.pre_step_hooks.append(strike)
        report = controller.run(64)
        assert report.fault_detections >= 2  # livelock trips, then re-trips
        assert report.quarantined_links  # permanent fault taken out
        assert report.recoveries >= 1
        assert not report.recovery_exhausted


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------
class TestCampaign:
    def test_campaign_deterministic_under_fixed_seed(self):
        config = CampaignConfig(n_faults=12, seed=42, include_flap=True)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.render() == second.render()
        assert [
            (o.fault, o.detected, o.detect_cycle, o.error) for o in first.outcomes
        ] == [
            (o.fault, o.detected, o.detect_cycle, o.error) for o in second.outcomes
        ]

    def test_different_seeds_differ(self):
        a = run_campaign(CampaignConfig(n_faults=8, seed=1))
        b = run_campaign(CampaignConfig(n_faults=8, seed=2))
        assert [o.fault for o in a.outcomes] != [o.fault for o in b.outcomes]

    def test_acceptance_campaign(self):
        """The ISSUE acceptance bar: >= 100 single-bit state/link faults
        on a 4x4 torus; every parity-protected state-word corruption is
        detected; >= 90% of detections recover by rollback."""
        report = run_campaign(CampaignConfig(n_faults=100, seed=1))
        assert report.injected >= 100
        state_detected, state_total = report.per_domain["state"]
        assert state_total > 0
        assert state_detected == state_total  # 100% for parity-protected words
        assert report.detection_rate > 0
        assert report.recovery_rate >= 0.90
        assert not report.recovery_exhausted
        assert report.mean_cycles_to_detection <= 1.0  # caught at the swap

    def test_flap_campaign_quarantines(self):
        report = run_campaign(
            CampaignConfig(n_faults=2, seed=7, include_flap=True,
                           domains=(FaultDomain.STATE,))
        )
        assert report.quarantined_links
        flap = report.outcomes[-1]
        assert flap.fault.kind is FaultKind.FLAP
        assert flap.detected
        assert "LivelockError" in flap.error
        assert "unstable routers" in flap.error

    def test_injector_fires_each_fault_once(self):
        engine = make_engine(2, 2)
        model = FaultModel(engine, seed=0)
        faults = model.sample(3, first_cycle=2, spacing=2,
                              domains=(FaultDomain.LINK,))
        injector = FaultInjector(model, faults).attach()
        for _ in range(12):
            try:
                engine.step()
            except Exception:
                pass
        assert len(injector.fired) == 3
        assert not injector.pending
        injector.detach()
        assert not engine.pre_step_hooks


# ---------------------------------------------------------------------------
# CI satellite: the whole tree must at least compile
# ---------------------------------------------------------------------------
def test_sources_compile():
    root = Path(__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, "-m", "compileall", "-q", str(root / "src")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
