"""Tests for the FPGA device/resource/memory-map/timing models —
the Table 2, Table 3, Table 4 and section-4 reproductions."""

import pytest

from repro.fpga import (
    VIRTEX2_6000,
    VIRTEX2_8000,
    ArmSoftwareModel,
    FpgaTimingModel,
    MemoryMap,
    PlatformModel,
    direct_instantiation_limit,
    simulator_resources,
)
from repro.fpga.resources import bram_blocks_for
from repro.fpga.timing import PAPER_TABLE3, PAPER_TABLE4
from repro.noc import NetworkConfig, RouterConfig


class TestDevice:
    def test_capacity_units(self):
        """The Table 2 percentages pin the units: slices and BRAM18s."""
        assert round(100 * 7053 / VIRTEX2_8000.slices) == 15
        assert int(100 * 139 / VIRTEX2_8000.bram_blocks) == 82

    def test_clb_is_four_slices(self):
        assert VIRTEX2_8000.clbs == VIRTEX2_8000.slices // 4

    def test_smaller_device(self):
        assert VIRTEX2_6000.slices < VIRTEX2_8000.slices


class TestBramPacking:
    def test_wide_shallow_uses_36bit_mode(self):
        # 512 x 2112: 59 blocks in 512x36 mode.
        assert bram_blocks_for(512, 2112) == 59

    def test_deep_narrow_uses_1bit_mode(self):
        # 65536 x 3: 16Kx1 mode -> 4 deep x 3 wide = 12.
        assert bram_blocks_for(65536, 3) == 12

    def test_single_small_memory(self):
        assert bram_blocks_for(512, 32) == 1
        assert bram_blocks_for(16, 8) == 1

    def test_zero(self):
        assert bram_blocks_for(0, 8) == 0


class TestTable2:
    def test_exact_reproduction(self):
        """The headline Table 2 check: every row, derived."""
        report = simulator_resources(NetworkConfig(16, 16))
        assert report.rows() == [
            ("Router", 1762, 61),
            ("Stimuli interface", 540, 62),
            ("Network", 2103, 16),
            ("Random number generator", 2021, 0),
            ("Global control", 627, 0),
        ]
        assert report.total_slices == 7053
        assert report.total_bram == 139
        assert report.fits()

    def test_render_matches_paper_totals(self):
        text = simulator_resources(NetworkConfig(16, 16)).render()
        assert "7053" in text and "139" in text
        assert "15%" in text and "82%" in text

    def test_smaller_fpga_needs_reduced_design(self):
        """Section 6: 'possible to simulate the design in smaller FPGAs,
        but it would reduce the maximum number of routers and/or the
        amount of state registers (e.g. queue depth)'."""
        from repro.fpga.device import VIRTEX2_4000

        full = simulator_resources(NetworkConfig(16, 16), device=VIRTEX2_4000)
        assert not full.fits()  # 139 BRAM > the XC2V4000's 120
        reduced = simulator_resources(
            NetworkConfig(8, 8, router=RouterConfig(queue_depth=2)),
            device=VIRTEX2_4000,
            max_routers=64,
        )
        assert reduced.fits()

    def test_reduced_queue_depth_frees_brams(self):
        shallow = simulator_resources(
            NetworkConfig(16, 16, router=RouterConfig(queue_depth=2))
        )
        assert shallow.total_bram < 139

    def test_fewer_routers_frees_brams(self):
        small = simulator_resources(NetworkConfig(8, 8), max_routers=64)
        assert small.total_bram < 139


class TestDirectInstantiation:
    def test_section4_limit(self):
        """'a size limitation of approximately 24 routers in a Virtex-II
        8000 [...] with a reduced data-path of 6-bit'."""
        est = direct_instantiation_limit(data_width=6)
        assert 20 <= est.max_routers <= 28

    def test_tristates_are_the_binding_constraint(self):
        """'The two major bottlenecks were the number of CLBs and
        available number of tri-states.'"""
        est = direct_instantiation_limit(data_width=6)
        assert est.limit_by_tbufs <= est.limit_by_slices

    def test_sequential_simulator_beats_direct_by_10x(self):
        est = direct_instantiation_limit(data_width=6)
        assert 256 >= 10 * est.max_routers

    def test_full_datapath_is_worse(self):
        assert (
            direct_instantiation_limit(data_width=16).max_routers
            < direct_instantiation_limit(data_width=6).max_routers
        )


class TestMemoryMap:
    def test_fits_17bit_interface(self):
        mmap = MemoryMap(NetworkConfig(16, 16))
        assert mmap.words_used <= 1 << 17

    def test_regions_disjoint_and_ordered(self):
        mmap = MemoryMap(NetworkConfig(6, 6))
        position = 0
        for region in mmap.regions:
            assert region.base == position
            position = region.end

    def test_entry_addressing(self):
        mmap = MemoryMap(NetworkConfig(6, 6))
        a = mmap.stimuli_entry_address(0, 0, 0)
        b = mmap.stimuli_entry_address(0, 0, 1)
        assert b - a == mmap.words_per_entry
        assert mmap.region_of(a) is mmap.stimuli
        out = mmap.output_entry_address(3, 2)
        assert mmap.region_of(out) is mmap.output

    def test_bounds(self):
        mmap = MemoryMap(NetworkConfig(6, 6))
        with pytest.raises(IndexError):
            mmap.stimuli_entry_address(0, 9, 0)
        with pytest.raises(IndexError):
            mmap.region_of(1 << 20)

    def test_render(self):
        assert "stimuli" in MemoryMap(NetworkConfig(6, 6)).render()


class TestTimingModel:
    def test_delta_rate(self):
        fpga = FpgaTimingModel()
        assert fpga.delta_rate_hz == pytest.approx(3.3e6)

    def test_section6_ceiling(self):
        """3.3e6 / 36 = 91.6 kHz for a 6x6 network."""
        assert FpgaTimingModel().theoretical_max_cps(36) == pytest.approx(91_666.7, rel=1e-3)

    def test_modeled_cps_in_paper_band(self):
        """A Fig. 1-scale workload lands between the paper's average and
        fastest figures."""
        pm = PlatformModel()
        cycles = 10_000
        # moderate load, complex analysis -> near "average"
        flits = int(36 * 0.15 * cycles)
        deltas = int(36 * cycles * 1.25)
        avg = pm.simulated_cps(cycles, flits, flits, deltas, periods=cycles // 24,
                               complex_analysis=True)
        assert 15_000 <= avg <= 30_000
        # light load, simple analysis -> near "fastest"
        flits = int(36 * 0.05 * cycles)
        deltas = int(36 * cycles * 1.08)
        fast = pm.simulated_cps(cycles, flits, flits, deltas, periods=cycles // 24)
        assert 45_000 <= fast <= 92_000
        assert fast > avg

    def test_rng_offload_speedup(self):
        """Section 8: FPGA RNG bought ~50 % simulation speed."""
        pm = PlatformModel()
        cycles, flits = 10_000, int(36 * 0.15 * 10_000)
        deltas = int(36 * cycles * 1.2)
        with_rng = pm.simulated_cps(cycles, flits, flits, deltas, fpga_rng=True,
                                    complex_analysis=True)
        without = pm.simulated_cps(cycles, flits, flits, deltas, fpga_rng=False,
                                   complex_analysis=True)
        speedup = with_rng / without
        assert 1.3 <= speedup <= 1.7

    def test_table4_shares_in_paper_ranges(self):
        pm = PlatformModel()
        cycles = 10_000
        flits = int(36 * 0.12 * cycles)
        deltas = int(36 * cycles * 1.2)
        shares = pm.breakdown(
            flits, flits, deltas, periods=cycles // 24, complex_analysis=True
        ).percentages()
        for phase, (lo, hi) in PAPER_TABLE4.items():
            assert lo - 1 <= shares[phase] <= hi + 1, (phase, shares[phase])

    def test_speedup_vs_systemc_in_80_300_band(self):
        """The abstract's 80-300x claim: modelled FPGA CPS over the
        paper's measured SystemC 215 Hz."""
        pm = PlatformModel()
        cycles = 10_000
        systemc = PAPER_TABLE3["SystemC"][0]
        for load, complex_analysis in ((0.15, True), (0.06, False)):
            flits = int(36 * load * cycles)
            deltas = int(36 * cycles * (1 + 1.7 * load))
            cps = pm.simulated_cps(
                cycles, flits, flits, deltas, periods=cycles // 24,
                complex_analysis=complex_analysis,
            )
            assert 80 <= cps / systemc <= 300

    def test_simulation_hidden_behind_arm(self):
        """With realistic loads the FPGA is never the bottleneck
        (Table 4: simulate 0-2 %)."""
        pm = PlatformModel()
        flits = int(36 * 0.15 * 1000)
        shares = pm.breakdown(flits, flits, 36 * 1200, periods=42,
                              complex_analysis=True).percentages()
        assert shares["simulate"] <= 2.5
