"""Golden-vector regression: the exact bits of packed state words.

The bit layout of the state word is an interface (the FPGA memory map
depends on it); these vectors pin it so refactors cannot silently move a
field.  The values were produced by the verified implementation and
hand-checked against the layout documentation in repro.noc.layout.
"""

from repro.noc import NetworkConfig, RouterConfig
from repro.noc.flit import Flit, FlitType, Header
from repro.noc.layout import (
    pack_router_core,
    pack_stimuli,
    state_word_layout,
)
from repro.noc.network import StimuliState
from repro.noc.router import RouterState


class TestGoldenVectors:
    def test_reset_router_core_word(self):
        """Reset state: all queues empty, allocation table empty, both
        pointers parked at 19 (0b10011), flags clear."""
        cfg = RouterConfig()
        word = pack_router_core(cfg, RouterState(cfg))
        # Queue storage and pointers/counters are all zero.
        assert word.value & ((1 << 1580) - 1) == 0
        # Allocation entries: valid=0 (src field irrelevant but zeroed).
        alloc_bits = word[1580 : 1580 + 120]
        assert alloc_bits.value == 0
        # Five arbiter pointers of 19 each.
        arb = word[1700 : 1700 + 25]
        expected = 0
        for p in range(5):
            expected |= 19 << (5 * p)
        assert arb.value == expected
        # Allocator pointer 19, flags 0.
        assert word[1725 : 1725 + 5].value == 19
        assert word[1730 : 1732].value == 0
        assert word.width == 1732

    def test_single_flit_in_queue_word(self):
        """One HEAD flit in queue 0 (LOCAL port, VC 0) lands in the low
        18 bits, with wr pointer 1 and count 1 in the control section."""
        cfg = RouterConfig()
        state = RouterState(cfg)
        flit = Header(dest_x=3, dest_y=1, gt=False, tag=5).head_flit()
        encoded = flit.encode()
        state.queues[0].push(encoded)
        word = pack_router_core(cfg, state)
        assert word[0:18].value == encoded
        # control section starts at 1440: queue 0 pointers (rd=0, wr=1,
        # count=1) -> bits rd[2] wr[2] count[3] LSB-first.
        ptrs = word[1440 : 1440 + 7]
        assert ptrs.value == (0) | (1 << 2) | (1 << 4)

    def test_header_encoding_pinned(self):
        assert Header(dest_x=3, dest_y=1, gt=False, tag=5).encode() == 0x0A13
        assert Header(dest_x=15, dest_y=15, gt=True, tag=127).encode() == 0xFFFF
        assert Flit(FlitType.TAIL, 0xABCD).encode() == (3 << 16) | 0xABCD

    def test_stimuli_word_pinned(self):
        cfg = RouterConfig()
        state = StimuliState(cfg.n_vcs)
        state.inj_word[0] = 0x2ABCD  # BODY flit
        state.inj_valid[0] = 1
        state.rr_ptr = 3
        word = pack_stimuli(cfg, state)
        assert word.width == 180
        # inj_word[0] occupies bits [0:18].
        assert word[0:18].value == 0x2ABCD
        # valid bits at [72:76], rr_ptr at [76:78].
        assert word[72:76].value == 0b0001
        assert word[76:78].value == 3

    def test_layout_total_and_offsets_pinned(self):
        layout = state_word_layout(RouterConfig())
        assert layout.total_width == 2112
        assert layout.offset_of("input_queues") == 0
        assert layout.offset_of("control") == 1440
        assert layout.offset_of("links") == 1732
        assert layout.offset_of("stimuli") == 1932

    def test_known_simulation_fingerprint(self):
        """End-to-end determinism pin: a fixed workload produces a fixed
        state-word fingerprint (across engines by the equivalence suite,
        across releases by this test)."""
        import hashlib

        from repro.engines import CycleEngine
        from tests.helpers import PacketDriver, be_packet

        cfg = NetworkConfig(3, 3)
        engine = CycleEngine(cfg)
        driver = PacketDriver(engine)
        for seq in range(4):
            driver.send(be_packet(cfg, seq, (seq * 2 + 1) % 9, nbytes=12, seq=seq), vc=2)
        driver.run(15)
        digest = hashlib.sha256()
        for r in range(cfg.n_routers):
            word = pack_router_core(cfg.router, engine.states[r])
            digest.update(word.value.to_bytes((word.width + 7) // 8, "little"))
        assert (
            digest.hexdigest()
            == "4f5832597d2b42fa448010de05a8d95c99e72f7df2d02a71d95854ae8aa7a6b1"
        )
