"""Heterogeneous networks (paper section 7.1): per-position router
functionality, here as per-router queue depths."""

import random

import pytest

from repro.engines import CycleEngine, RtlEngine, SequentialEngine, run_lockstep
from repro.noc import NetworkConfig, RouterConfig
from repro.noc.layout import table1

from tests.helpers import PacketDriver, be_packet
from tests.test_rtl_engine import traffic_from_packets


def hetero_net(width=3, height=3):
    """Deep queues at the center (a hotspot buffer), shallow elsewhere."""
    base = RouterConfig(queue_depth=2)
    deep = RouterConfig(queue_depth=8)
    center = (width * height) // 2
    return NetworkConfig(
        width, height, router=base, router_overrides=((center, deep),)
    )


class TestConfigValidation:
    def test_router_at(self):
        cfg = hetero_net()
        assert cfg.router_at(4).queue_depth == 8
        assert cfg.router_at(0).queue_depth == 2
        assert cfg.is_heterogeneous

    def test_wire_format_must_match(self):
        with pytest.raises(ValueError, match="wire formats"):
            NetworkConfig(
                3, 3,
                router=RouterConfig(),
                router_overrides=((0, RouterConfig(data_width=14)),),
            )
        with pytest.raises(ValueError, match="wire formats"):
            NetworkConfig(
                3, 3,
                router=RouterConfig(),
                router_overrides=((0, RouterConfig(gt_vcs=frozenset({0}))),),
            )

    def test_override_index_range(self):
        with pytest.raises(ValueError, match="out of range"):
            NetworkConfig(2, 2, router_overrides=((9, RouterConfig()),))

    def test_homogeneous_flag(self):
        assert not NetworkConfig(2, 2).is_heterogeneous


class TestHeterogeneousBehavior:
    def test_delivery_through_mixed_depths(self):
        cfg = hetero_net()
        engine = CycleEngine(cfg)
        driver = PacketDriver(engine)
        for seq in range(10):
            driver.send(be_packet(cfg, seq % 9, (seq * 4 + 2) % 9, nbytes=20, seq=seq), vc=2)
        driver.run_until_drained()
        assert len(driver.delivered) == 10

    def test_state_words_differ_per_router(self):
        cfg = hetero_net()
        shallow = table1(cfg.router_at(0))["Total"]
        deep = table1(cfg.router_at(4))["Total"]
        assert deep > shallow

    def test_deep_center_buffers_more(self):
        cfg = hetero_net()
        engine = CycleEngine(cfg)
        driver = PacketDriver(engine)
        # Two long flows merge at the center, competing for its SOUTH
        # output (X-first routing): one comes straight down the column,
        # one turns at the center. The loser queues in the deep buffers.
        for seq in range(3):
            driver.send(be_packet(cfg, cfg.index(1, 0), cfg.index(1, 2), nbytes=30, seq=seq), vc=2)
            driver.send(be_packet(cfg, cfg.index(0, 1), cfg.index(1, 2), nbytes=30, seq=seq + 10), vc=2)
        peak = 0
        for _ in range(40):
            driver.pump()
            engine.step()
            peak = max(peak, engine.states[4].total_buffered())
        # The 8-deep center queues actually fill beyond a 2-deep router's
        # capacity on the traversed VC path.
        assert peak > 4
        driver.run_until_drained()

    def test_three_engine_equivalence_heterogeneous(self):
        cfg = hetero_net(3, 2)
        rng = random.Random(2026)
        sends = [
            (
                rng.randrange(12),
                rng.choice([2, 3]),
                be_packet(cfg, rng.randrange(6), rng.randrange(6), nbytes=10, seq=s),
            )
            for s in range(6)
        ]
        engines = [CycleEngine(cfg), SequentialEngine(cfg), RtlEngine(cfg)]
        report = run_lockstep(engines, cycles=60, traffic=traffic_from_packets(cfg, sends))
        assert report, f"{report.diverged_engine}: {report.detail}"

    def test_packed_mode_heterogeneous(self):
        """The packed state memory pads to the widest unit word."""
        cfg = hetero_net(3, 2)
        golden = CycleEngine(cfg)
        packed = SequentialEngine(cfg, packed=True)
        rng = random.Random(5)
        sends = [
            (
                rng.randrange(10),
                2,
                be_packet(cfg, rng.randrange(6), rng.randrange(6), nbytes=8, seq=s),
            )
            for s in range(4)
        ]
        report = run_lockstep(
            [golden, packed], cycles=50, traffic=traffic_from_packets(cfg, sends)
        )
        assert report, report.detail
        # Word width is governed by the deep router (the override sits
        # at the centre index of the 3x2 grid).
        deep_core = table1(cfg.router_at(3))["Total"] - 200 - 180
        assert packed.statemem.width == deep_core + 180
