"""Levelizer edge cases and the kernel backend ladder.

The levelizer must never produce a silently wrong schedule: a
combinational cycle raises :class:`CyclicDependencyError`, the owning
engine records the reason and falls back to the dynamic worklist, and
degenerate graphs (single router, quarantined links) levelize to valid
schedules.  The ladder half covers capability probing, the environment
override, and the degrade-with-one-warning contract.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as kernels
import repro.seqsim.levelized as levelized_mod
from repro.engines import LevelizedSequentialEngine, SequentialEngine
from repro.kernels import (
    KernelUnavailableError,
    kernel_versions,
    probe_backends,
    resolve_kernels_mode,
    select_backend,
)
from repro.kernels.levelize import (
    CyclicDependencyError,
    LevelizedScheduler,
    LevelSchedule,
    levelize,
    levelize_graph,
    toposort,
)
from repro.noc import NetworkConfig
from repro.noc.topology import Topology


class TestLevelize:
    def test_torus_levelizes_to_three_kind_levels(self):
        cfg = NetworkConfig(4, 4, topology="torus")
        schedule = levelize(cfg)
        assert schedule.depth == 3
        assert len(schedule) == 3 * cfg.n_routers
        for kind, level in zip(("room", "fwd", "state"), schedule.levels):
            assert len(level) == cfg.n_routers
            assert all(node[0] == kind for node in level)
        nodes, edges = Topology(cfg).signal_graph()
        schedule.validate(nodes, edges)

    def test_mesh_levelizes_and_validates(self):
        cfg = NetworkConfig(3, 5, topology="mesh")
        schedule = levelize(cfg)
        nodes, edges = Topology(cfg).signal_graph()
        schedule.validate(nodes, edges)
        # every edge goes strictly downward in level order
        for src, dst in edges:
            assert schedule.level_of[src] < schedule.level_of[dst]

    def test_single_router_graph(self):
        nodes = [("room", 0), ("fwd", 0), ("state", 0)]
        edges = [(("room", 0), ("fwd", 0)), (("fwd", 0), ("state", 0))]
        schedule = levelize_graph(nodes, edges)
        assert schedule.depth == 3
        assert schedule.order == (("room", 0), ("fwd", 0), ("state", 0))
        schedule.validate(nodes, edges)

    def test_quarantined_link_graph_levelizes(self):
        cfg = NetworkConfig(4, 4, topology="torus")
        topo = Topology(cfg)
        full_nodes, full_edges = topo.signal_graph()
        nodes, edges = topo.signal_graph(exclude_links=[(5, 1)])
        assert nodes == full_nodes
        assert len(edges) < len(full_edges)
        schedule = levelize_graph(nodes, edges)
        assert schedule.depth == 3
        schedule.validate(nodes, edges)

    def test_cycle_raises_with_remaining_nodes(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("b", "c"), ("c", "b"), ("a", "d")]
        with pytest.raises(CyclicDependencyError) as excinfo:
            levelize_graph(nodes, edges)
        remaining = set(excinfo.value.remaining)
        assert remaining == {"b", "c"}

    def test_self_loop_is_a_cycle(self):
        with pytest.raises(CyclicDependencyError):
            levelize_graph(["a"], [("a", "a")])

    def test_toposort_linear_chain(self):
        order = toposort([3, 1, 2], [(1, 2), (2, 3)])
        assert order.index(1) < order.index(2) < order.index(3)

    def test_scheduler_sweeps_and_deltas(self):
        cfg = NetworkConfig(4, 4, topology="torus")
        scheduler = LevelizedScheduler.for_network(cfg)
        assert scheduler.deltas_per_cycle == 3 * cfg.n_routers
        sweeps = scheduler.sweeps
        assert len(sweeps) == 3

    @given(
        n=st.integers(min_value=1, max_value=12),
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=11),
            ),
            max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_dag_levels_respect_edges(self, n, pairs):
        nodes = list(range(n))
        # orient every pair low -> high: guaranteed acyclic
        edges = [
            (min(a, b), max(a, b))
            for a, b in pairs
            if a != b and max(a, b) < n
        ]
        schedule = levelize_graph(nodes, edges)
        schedule.validate(nodes, edges)
        assert sorted(schedule.order) == nodes
        for src, dst in edges:
            assert schedule.level_of[src] < schedule.level_of[dst]
        # levels are as early as possible: a node's level is one past
        # its deepest predecessor
        preds = {v: [] for v in nodes}
        for src, dst in edges:
            preds[dst].append(src)
        for v in nodes:
            expected = (
                0
                if not preds[v]
                else 1 + max(schedule.level_of[p] for p in preds[v])
            )
            assert schedule.level_of[v] == expected


class TestEngineFallback:
    def test_cyclic_schedule_falls_back_to_worklist(self, monkeypatch):
        def boom(cfg):
            raise CyclicDependencyError([("fwd", 0), ("room", 1)])

        monkeypatch.setattr(levelized_mod, "levelize", boom)
        cfg = NetworkConfig(3, 3, topology="torus")
        engine = LevelizedSequentialEngine(cfg)
        assert engine.levelizer is None
        assert engine._body is None
        assert "unresolved" in engine.schedule_fallback or engine.schedule_fallback
        # the fallback engine still produces the reference results
        reference = SequentialEngine(cfg)
        for _ in range(40):
            engine.step()
            reference.step()
        assert engine.snapshot() == reference.snapshot()
        # worklist deltas, not the 3R static schedule
        assert engine.metrics.total_deltas == reference.metrics.total_deltas

    def test_fault_disables_fused_body_permanently(self):
        cfg = NetworkConfig(3, 3, topology="torus")
        engine = LevelizedSequentialEngine(cfg)
        assert engine._body is not None
        assert engine.links.fault_free
        engine.quarantine_link(4, 1)
        assert not engine.links.fault_free
        reference = SequentialEngine(cfg)
        reference.quarantine_link(4, 1)
        for _ in range(40):
            engine.step()
            reference.step()
        assert engine.snapshot() == reference.snapshot()

    def test_levelized_rejects_bad_kernel_name(self):
        from repro.engines import make_engine

        cfg = NetworkConfig(3, 3)
        with pytest.raises(ValueError, match="sequential"):
            make_engine("sequential", cfg, kernel="jit")
        with pytest.raises(ValueError, match="batch"):
            make_engine("batch", cfg, kernel="bogus")
        with pytest.raises(ValueError, match="rtl"):
            make_engine("rtl", cfg, kernel="jit")
        # batch + levelized is a valid pairing: the fused chunk kernel.
        assert make_engine("batch", cfg, kernel="levelized").kernel in (
            "levelized",
            "python",  # no compiler: falls back, never raises
        )


class TestBackendLadder:
    def test_probe_backends_shape(self):
        probes = probe_backends()
        assert set(probes) == {"numba", "cffi", "numpy"}
        assert probes["numpy"] == "ok"
        # numba is declared, never the selected tier
        assert probes["numba"] != "ok"

    def test_kernel_versions_shape(self):
        versions = kernel_versions()
        assert set(versions) == {"cffi", "numba", "cc"}

    def test_resolve_mode_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert resolve_kernels_mode("jit") == "jit"
        assert resolve_kernels_mode(None) == "numpy"
        assert resolve_kernels_mode("auto") == "numpy"
        monkeypatch.delenv("REPRO_KERNELS")
        assert resolve_kernels_mode(None) == "auto"

    def test_resolve_mode_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernels mode"):
            resolve_kernels_mode("fortran")
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(ValueError, match="unknown kernels mode"):
            resolve_kernels_mode(None)

    def test_numpy_mode_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert select_backend(None) == "numpy"

    def test_degrade_warns_exactly_once(self, monkeypatch):
        from repro.kernels import cbackend

        monkeypatch.setattr(
            cbackend, "availability", lambda: "cffi is not installed"
        )
        monkeypatch.setattr(kernels, "_warned_degrade", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert select_backend(None) == "numpy"
            assert select_backend(None) == "numpy"
        runtime = [w for w in caught if w.category is RuntimeWarning]
        assert len(runtime) == 1
        assert "falling back" in str(runtime[0].message)

    def test_jit_mode_raises_when_unavailable(self, monkeypatch):
        from repro.kernels import cbackend

        monkeypatch.setattr(
            cbackend, "availability", lambda: "no C compiler found"
        )
        with pytest.raises(KernelUnavailableError, match="no C compiler"):
            select_backend("jit")

    def test_batch_engine_degrades_with_reason(self, monkeypatch):
        from repro.engines import BatchEngine

        from repro.kernels import cbackend

        monkeypatch.setattr(
            cbackend, "availability", lambda: "cffi is not installed"
        )
        monkeypatch.setattr(kernels, "_warned_degrade", True)  # quiet
        engine = BatchEngine(NetworkConfig(3, 3), lanes=2)
        assert engine.kernel == "python"
        assert engine.kernel_reason
        with pytest.raises(KernelUnavailableError):
            BatchEngine(NetworkConfig(3, 3), lanes=2, kernel="jit")
