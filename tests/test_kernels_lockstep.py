"""Compiled kernels are bit-identical to the engines they accelerate.

The levelized fused body must match the dynamic worklist engine and the
interpreted static schedule snapshot for snapshot — across random
seeds, topologies, heterogeneous configs, and fault injections (both
the permanent quarantine that forces the worklist fallback and the
transient SEU the touch-stamp guard has to catch).  Likewise the batch
engine's generated-C kernel must match the NumPy reference sweeps lane
for lane.  The ``kernel_smoke``-marked class is the cheap CI subset.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import (
    BatchEngine,
    LevelizedSequentialEngine,
    SequentialEngine,
    run_batched,
)
from repro.engines.sequential import StaticScheduleEngine
from repro.kernels import probe_backends
from repro.noc import NetworkConfig, RouterConfig
from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random

from tests.helpers import PacketDriver, be_packet

JIT_REASON = probe_backends()["cffi"]
needs_jit = pytest.mark.skipif(
    JIT_REASON != "ok", reason=f"no compiled backend: {JIT_REASON}"
)


def torus(width=3, height=3, depth=4, **kw):
    return NetworkConfig(
        width, height, topology="torus",
        router=RouterConfig(queue_depth=depth), **kw,
    )


def random_schedule(cfg, seed, packets=25, horizon=50):
    """(cycle, vc, packet) triples of random BE traffic."""
    rng = random.Random(seed)
    out = []
    for i in range(packets):
        src = rng.randrange(cfg.n_routers)
        dest = rng.randrange(cfg.n_routers)
        out.append(
            (
                rng.randrange(horizon),
                rng.choice(cfg.router.be_vcs),
                be_packet(cfg, src, dest, nbytes=rng.randrange(1, 12), seq=i),
            )
        )
    return out


def lockstep(engines, schedule, cycles, events=()):
    """Identical traffic into every engine, snapshots compared every
    cycle, injection/ejection logs at the end.  ``events`` is a list of
    ``(cycle, fn)``; ``fn(engine)`` is applied to *every* engine at the
    top of that cycle — the fault-injection hook."""
    drivers = [PacketDriver(e) for e in engines]
    by_cycle = {}
    for cycle, vc, packet in schedule:
        by_cycle.setdefault(cycle, []).append((vc, packet))
    for t in range(cycles):
        for at, fn in events:
            if at == t:
                for engine in engines:
                    fn(engine)
        for vc, packet in by_cycle.get(t, []):
            for driver in drivers:
                driver.send(packet, vc)
        for driver in drivers:
            driver.pump()
        for engine in engines:
            engine.step()
        reference = engines[0].snapshot()
        for engine in engines[1:]:
            assert engine.snapshot() == reference, (
                f"divergence at cycle {t} in {type(engine).__name__}"
            )
    ref_inj = [r.__dict__ for r in engines[0].injections]
    ref_ej = [r.__dict__ for r in engines[0].ejections]
    for engine in engines[1:]:
        assert [r.__dict__ for r in engine.injections] == ref_inj
        assert [r.__dict__ for r in engine.ejections] == ref_ej


def trio(cfg):
    """Reference worklist, interpreted static schedule, fused body."""
    return [
        SequentialEngine(cfg),
        StaticScheduleEngine(cfg),
        LevelizedSequentialEngine(cfg),
    ]


@pytest.mark.kernel_smoke
class TestKernelSmoke:
    """The tiny always-on CI subset: one levelized lockstep point and
    one jit-vs-python batch point (when a compiler exists)."""

    def test_levelized_lockstep_tiny(self):
        cfg = torus()
        engines = trio(cfg)
        assert engines[2]._body is not None
        lockstep(engines, random_schedule(cfg, seed=7), cycles=60)

    @needs_jit
    def test_batch_jit_matches_python_tiny(self):
        cfg = torus()
        pair = {
            kernel: BatchEngine(cfg, lanes=2, kernel=kernel)
            for kernel in ("python", "jit")
        }
        for kernel, engine in pair.items():
            drivers = [
                TrafficDriver(
                    engine.lane(i),
                    be=BernoulliBeTraffic(
                        cfg, 0.08, uniform_random(cfg), seed=11 + i
                    ),
                )
                for i in range(2)
            ]
            run_batched(engine, drivers, cycles=60)
            assert engine.kernel == kernel
        for lane in range(2):
            assert (
                pair["jit"].lane_snapshot(lane)
                == pair["python"].lane_snapshot(lane)
            )
            assert (
                pair["jit"].lane_injections(lane)
                == pair["python"].lane_injections(lane)
            )
            assert (
                pair["jit"].lane_ejections(lane)
                == pair["python"].lane_ejections(lane)
            )


class TestLevelizedLockstep:
    def test_mesh_lockstep(self):
        cfg = NetworkConfig(3, 5, topology="mesh")
        lockstep(trio(cfg), random_schedule(cfg, seed=3), cycles=70)

    def test_heterogeneous_lockstep(self):
        cfg = torus(
            router_overrides=((4, RouterConfig(queue_depth=8)),)
        )
        engines = trio(cfg)
        assert engines[2]._body is not None
        lockstep(engines, random_schedule(cfg, seed=5), cycles=70)

    def test_quarantine_mid_run_lockstep(self):
        """A permanent link fault mid-run forces the fused body off the
        fast path; results must stay identical through and after the
        transition."""
        cfg = torus(4, 4)
        engines = trio(cfg)
        lockstep(
            engines,
            random_schedule(cfg, seed=9, packets=30, horizon=70),
            cycles=100,
            events=[(35, lambda e: e.quarantine_link(5, 1))],
        )
        assert not engines[2].links.fault_free

    def test_seu_mid_run_lockstep(self):
        """A transient link-memory SEU bumps the touch stamps; the idle
        signature guard must re-evaluate the affected units instead of
        replaying stale cached values."""
        cfg = torus()
        engines = trio(cfg)
        wire = engines[0].link_wire_names()[5]

        def upset(engine):
            engine.inject_link_fault(wire, bit=2)

        lockstep(
            engines,
            random_schedule(cfg, seed=13),
            cycles=80,
            events=[(25, upset), (26, upset)],
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_lockstep_property_random_seeds(self, seed):
        cfg = torus()
        rng = random.Random(seed)
        events = []
        if rng.random() < 0.5:
            wire, bit = rng.randrange(20), rng.randrange(8)
            events.append(
                (rng.randrange(10, 40),
                 lambda e: e.inject_link_fault(wire, bit=bit))
            )
        lockstep(
            trio(cfg),
            random_schedule(cfg, seed=seed),
            cycles=60,
            events=events,
        )

    def test_traffic_driver_lockstep(self):
        """The Bernoulli traffic pipeline (the bench workload) drives
        the fused body and the worklist engine to identical streams."""
        cfg = torus(4, 4)
        engines = [SequentialEngine(cfg), LevelizedSequentialEngine(cfg)]
        drivers = [
            TrafficDriver(
                e, be=BernoulliBeTraffic(cfg, 0.08, uniform_random(cfg), seed=42)
            )
            for e in engines
        ]
        for t in range(120):
            for driver in drivers:
                driver.step()
            assert engines[0].snapshot() == engines[1].snapshot(), (
                f"divergence at cycle {t}"
            )
        assert engines[0].injections == engines[1].injections
        assert engines[0].ejections == engines[1].ejections


@needs_jit
class TestBatchJitLockstep:
    def run_pair(self, cfg, lanes, cycles, seed0=100, mid=None):
        """Run jit and python engines on identical per-lane streams,
        optionally applying ``mid(engine)`` halfway, and assert lane-
        for-lane identity of snapshots and logs."""
        pair = {}
        for kernel in ("python", "jit"):
            engine = BatchEngine(cfg, lanes=lanes, kernel=kernel)
            drivers = [
                TrafficDriver(
                    engine.lane(i),
                    be=BernoulliBeTraffic(
                        cfg, 0.10, uniform_random(cfg), seed=seed0 + i
                    ),
                )
                for i in range(lanes)
            ]
            run_batched(engine, drivers, cycles // 2)
            if mid is not None:
                mid(engine)
            run_batched(engine, drivers, cycles - cycles // 2)
            assert engine.cycle == cycles
            pair[kernel] = engine
        for lane in range(lanes):
            assert (
                pair["jit"].lane_snapshot(lane)
                == pair["python"].lane_snapshot(lane)
            ), f"lane {lane} diverged"
            assert (
                pair["jit"].lane_injections(lane)
                == pair["python"].lane_injections(lane)
            )
            assert (
                pair["jit"].lane_ejections(lane)
                == pair["python"].lane_ejections(lane)
            )
        return pair

    def test_lane_equality(self):
        self.run_pair(torus(4, 4), lanes=3, cycles=120)

    def test_mesh_lane_equality(self):
        self.run_pair(
            NetworkConfig(3, 4, topology="mesh"), lanes=2, cycles=100
        )

    def test_quarantine_mid_run(self):
        """Quarantining a link mid-run invalidates the compiled step's
        bound tables; the rebind must leave both tiers identical."""
        pair = self.run_pair(
            torus(4, 4),
            lanes=2,
            cycles=120,
            mid=lambda e: e.quarantine_link(5, 1),
        )
        assert (5, 1) in pair["jit"].quarantined_links


class TestEnvFallback:
    def test_numpy_env_forces_python_batch(self, monkeypatch):
        """``REPRO_KERNELS=numpy`` pins the reference path and records
        why, without any warning noise."""
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = BatchEngine(torus(), lanes=2)
        assert engine.kernel == "python"
        assert engine.kernel_reason
        engine.run(30)
        solo = BatchEngine(torus(), lanes=2, kernel="python")
        solo.run(30)
        assert engine.snapshot() == solo.snapshot()
