"""Tests for the Table-1 state-word layout: the published bit budget and
lossless pack/unpack of live simulation state."""

import pytest

from repro.bits import BitVector
from repro.noc import Network, NetworkConfig, RouterConfig
from repro.noc.layout import (
    control_layout,
    links_layout,
    pack_router_core,
    pack_stimuli,
    queue_storage_layout,
    state_word_layout,
    stimuli_layout,
    table1,
    unpack_router_core,
    unpack_stimuli,
)

from tests.helpers import PacketDriver, be_packet, gt_packet


class TestTable1Numbers:
    """The headline reproduction: Table 1 derived from the default config."""

    def test_input_queues_1440(self):
        assert queue_storage_layout(RouterConfig()).total_width == 1440

    def test_control_292(self):
        assert control_layout(RouterConfig()).total_width == 292

    def test_links_200(self):
        assert links_layout(RouterConfig()).total_width == 200

    def test_stimuli_180(self):
        assert stimuli_layout(RouterConfig()).total_width == 180

    def test_total_2112(self):
        assert state_word_layout(RouterConfig()).total_width == 2112

    def test_table1_dict(self):
        rows = table1(RouterConfig())
        assert rows == {
            "Input queues": 1440,
            "Router control and arbitration": 292,
            "Links": 200,
            "Stimuli interfaces": 180,
            "Total": 2112,
        }

    def test_scales_with_queue_depth(self):
        """Section 6: smaller FPGAs -> reduce queue depth. The layout
        follows the parameters instead of hard-coding Table 1."""
        rows = table1(RouterConfig(queue_depth=2))
        assert rows["Input queues"] == 720
        # rd/wr pointers shrink to 1 bit, counters to 2 bits.
        assert rows["Router control and arbitration"] == 292 - 20 * 3

    def test_scales_with_data_width(self):
        rows = table1(RouterConfig(data_width=14))
        assert rows["Input queues"] == 5 * 4 * 4 * 16


class TestPackUnpack:
    def _active_network(self, depth=4):
        cfg = NetworkConfig(3, 3, router=RouterConfig(queue_depth=depth))
        network = Network(cfg)
        driver = PacketDriver(network)
        for seq in range(6):
            driver.send(
                be_packet(cfg, seq % 9, (seq * 3 + 1) % 9, nbytes=20, seq=seq), vc=2 + seq % 2
            )
        driver.send(gt_packet(cfg, 0, 5, nbytes=30), vc=0)
        driver.run(12)  # stop mid-flight: queues, allocations, pointers live
        return network

    def test_router_core_roundtrip_live_states(self):
        network = self._active_network()
        cfg = network.cfg.router
        assert network.total_buffered() > 0, "test needs in-flight traffic"
        for state in network.states:
            word = pack_router_core(cfg, state)
            assert word.width == 1440 + 292
            recovered = unpack_router_core(cfg, word)
            assert recovered == state
            assert recovered.queue_alloc == state.queue_alloc

    def test_stimuli_roundtrip_live_states(self):
        network = self._active_network()
        cfg = network.cfg.router
        for state in network.iface_states:
            word = pack_stimuli(cfg, state)
            assert word.width == 180
            assert unpack_stimuli(cfg, word) == state

    def test_roundtrip_with_depth_2(self):
        network = self._active_network(depth=2)
        cfg = network.cfg.router
        for state in network.states:
            word = pack_router_core(cfg, state)
            assert unpack_router_core(cfg, word) == state

    def test_fresh_state_packs_to_known_word(self):
        """A reset router packs deterministically (pointers at init values)."""
        from repro.noc.router import RouterState

        cfg = RouterConfig()
        word = pack_router_core(cfg, RouterState(cfg))
        again = pack_router_core(cfg, RouterState(cfg))
        assert word == again
        assert isinstance(word, BitVector)

    def test_eval_commutes_with_packing(self):
        """pack -> unpack -> eval == eval directly (bit accuracy of the
        memory representation, the property the FPGA design relies on)."""
        from repro.noc.router import RouterInputs

        network = self._active_network()
        cfg = network.cfg.router
        for index in range(network.cfg.n_routers):
            state = network.states[index]
            inputs = network.current_inputs(index)
            router = network.routers[index]
            out_direct, next_direct = router.eval(state, inputs)
            roundtripped = unpack_router_core(cfg, pack_router_core(cfg, state))
            out_packed, next_packed = router.eval(roundtripped, inputs)
            assert out_direct == out_packed
            assert next_direct == next_packed
