"""Tests for the section-5.2 log buffers and checkpointing."""

import pytest

from repro.engines import CycleEngine, SequentialEngine
from repro.noc import NetworkConfig, Port, RouterConfig
from repro.noc.checkpoint import (
    Checkpoint,
    CheckpointError,
    restore_checkpoint,
    save_checkpoint,
)
from repro.platform.logs import AccessDelayLog, LinkTrafficLog
from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random

from tests.helpers import PacketDriver, be_packet


class TestLinkTrafficLog:
    def test_captures_every_flit_on_the_link(self):
        net = NetworkConfig(4, 4, topology="mesh")
        engine = CycleEngine(net)
        driver = PacketDriver(engine)
        # One packet crossing link (0,0)->(1,0): monitor at router 1, WEST in.
        driver.send(be_packet(net, net.index(0, 0), net.index(3, 0)), vc=2)
        log = LinkTrafficLog(engine, router=net.index(1, 0), port=Port.WEST)
        for _ in range(40):
            driver.pump()
            engine.step()
            log.observe()
        samples = log.samples()
        assert len(samples) == 7  # all flits of the packet
        assert all(s.vc == 2 for s in samples)
        # back-to-back streaming: consecutive cycles
        cycles = [s.cycle for s in samples]
        assert cycles == list(range(cycles[0], cycles[0] + 7))

    def test_quiet_link_logs_nothing(self):
        net = NetworkConfig(3, 3)
        engine = CycleEngine(net)
        log = LinkTrafficLog(engine, router=0, port=Port.NORTH)
        for _ in range(10):
            engine.step()
            log.observe()
        assert log.samples() == []
        assert log.utilisation() == 0.0

    def test_local_port_rejected(self):
        net = NetworkConfig(3, 3)
        with pytest.raises(ValueError):
            LinkTrafficLog(CycleEngine(net), 0, Port.LOCAL)

    def test_overflow_drops_oldest(self):
        net = NetworkConfig(2, 2)
        engine = CycleEngine(net)
        be = BernoulliBeTraffic(net, 0.5, uniform_random(net), seed=4)
        driver = TrafficDriver(engine, be=be)
        log = LinkTrafficLog(engine, router=1, port=Port.WEST)
        for _ in range(1500):
            driver.generate(engine.cycle)
            driver.pump()
            engine.step()
            log.observe()
        assert log.dropped > 0
        assert log.buffer.count <= 512


class TestAccessDelayLog:
    def test_collects_delays(self):
        net = NetworkConfig(3, 3)
        engine = CycleEngine(net)
        be = BernoulliBeTraffic(net, 0.1, uniform_random(net), seed=6)
        driver = TrafficDriver(engine, be=be)
        log = AccessDelayLog(engine)
        for _ in range(200):
            driver.generate(engine.cycle)
            driver.pump()
            engine.step()
            log.observe()
        delays = log.delays()
        assert len(delays) == min(512, len(engine.injections)) or log.dropped
        assert all(d >= 0 for d in delays)


def run_with_traffic(engine, n_packets=8, cycles=25):
    cfg = engine.cfg
    driver = PacketDriver(engine)
    for seq in range(n_packets):
        driver.send(
            be_packet(cfg, seq % cfg.n_routers, (seq * 3 + 1) % cfg.n_routers,
                      nbytes=16, seq=seq),
            vc=2,
        )
    driver.run(cycles)
    return driver


class TestCheckpoint:
    def test_roundtrip_same_engine(self):
        cfg = NetworkConfig(3, 3)
        a = CycleEngine(cfg)
        run_with_traffic(a)  # leaves flits in flight
        assert a.total_buffered() > 0
        checkpoint = save_checkpoint(a)

        b = CycleEngine(cfg)
        restore_checkpoint(b, checkpoint)
        assert b.snapshot() == a.snapshot()
        ejections_before = len(a.ejections)
        a.run(30)
        b.run(30)
        assert b.snapshot() == a.snapshot()
        # Logs are host-side: the restored engine reproduces everything
        # ejected *after* the checkpoint.
        assert [r.__dict__ for r in b.ejections] == [
            r.__dict__ for r in a.ejections[ejections_before:]
        ]

    def test_cross_engine_restore(self):
        """A checkpoint saved by the cycle engine resumes bit-identically
        on the sequential (FPGA) engine — bit accuracy across methods."""
        cfg = NetworkConfig(3, 3)
        a = CycleEngine(cfg)
        run_with_traffic(a)
        checkpoint = save_checkpoint(a)
        b = SequentialEngine(cfg, packed=True)
        restore_checkpoint(b, checkpoint)
        a.run(25)
        b.run(25)
        assert b.snapshot() == a.snapshot()

    def test_json_roundtrip(self):
        cfg = NetworkConfig(3, 3)
        a = CycleEngine(cfg)
        run_with_traffic(a)
        checkpoint = save_checkpoint(a)
        again = Checkpoint.from_json(checkpoint.to_json())
        assert again == checkpoint
        b = CycleEngine(cfg)
        restore_checkpoint(b, again)
        assert b.snapshot() == a.snapshot()

    def test_shape_mismatch_rejected(self):
        a = CycleEngine(NetworkConfig(3, 3))
        checkpoint = save_checkpoint(a)
        with pytest.raises(CheckpointError):
            restore_checkpoint(CycleEngine(NetworkConfig(4, 3)), checkpoint)

    def test_config_mismatch_rejected(self):
        a = CycleEngine(NetworkConfig(3, 3))
        checkpoint = save_checkpoint(a)
        target = CycleEngine(NetworkConfig(3, 3, router=RouterConfig(queue_depth=2)))
        with pytest.raises(CheckpointError):
            restore_checkpoint(target, checkpoint)

    def test_cycle_counter_restored(self):
        cfg = NetworkConfig(3, 3)
        a = CycleEngine(cfg)
        a.run(17)
        b = CycleEngine(cfg)
        restore_checkpoint(b, save_checkpoint(a))
        assert b.cycle == 17


class TestCheckpointErrorPaths:
    def test_garbled_json_rejected(self):
        with pytest.raises(CheckpointError, match="unreadable checkpoint"):
            Checkpoint.from_json("{not json at all")

    def test_truncated_json_rejected(self):
        a = CycleEngine(NetworkConfig(3, 3))
        run_with_traffic(a)
        text = save_checkpoint(a).to_json()
        with pytest.raises(CheckpointError, match="unreadable checkpoint"):
            Checkpoint.from_json(text[: len(text) // 2])

    def test_missing_key_rejected(self):
        with pytest.raises(CheckpointError, match="unreadable checkpoint"):
            Checkpoint.from_json('{"cycle": 3}')

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_json('["a", "list", "not", "a", "dict"]')

    def test_wrong_size_restore_rejected(self):
        a = CycleEngine(NetworkConfig(3, 3))
        checkpoint = save_checkpoint(a)
        with pytest.raises(CheckpointError):
            restore_checkpoint(CycleEngine(NetworkConfig(2, 2)), checkpoint)


class TestCheckpointAfterRollback:
    def test_cross_engine_restore_after_rollback(self):
        """A checkpoint taken from a packed sequential engine that has
        been through fault -> rollback restores bit-identically onto the
        reference cycle engine: rollback leaves no hidden corruption."""
        from repro.engines import SequentialEngine as _SeqEngine

        cfg = NetworkConfig(3, 3)
        engine = _SeqEngine(cfg, packed=True)
        run_with_traffic(engine)
        pristine = save_checkpoint(engine)

        # Corrupt a packed word in each bank, then roll back.
        engine.statemem.inject_fault(2, 1 << 5)
        engine.statemem.inject_fault(4, 1 << 9, bank="next")
        assert engine.statemem.verify() != []
        restore_checkpoint(engine, pristine)
        assert engine.statemem.verify() == []  # both banks healed

        after = save_checkpoint(engine)
        reference = CycleEngine(cfg)
        restore_checkpoint(reference, after)
        engine.run(25)
        reference.run(25)
        assert reference.snapshot() == engine.snapshot()
