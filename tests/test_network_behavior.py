"""Behavioural tests of the golden network model: delivery, wormhole
invariants, flow control, GT/BE interaction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Network, NetworkConfig, RouterConfig
from repro.noc.config import Port
from repro.noc.flit import Flit, FlitType, Header
from repro.noc.router import ProtocolError

from tests.helpers import PacketDriver, be_packet, gt_packet


def small_net(**kwargs) -> NetworkConfig:
    defaults = dict(width=4, height=4, topology="torus")
    defaults.update(kwargs)
    return NetworkConfig(**defaults)


class TestIdleNetwork:
    def test_idle_step_preserves_state(self):
        network = Network(small_net())
        before = network.snapshot()
        network.run(10)
        assert network.snapshot() == before
        assert network.ejections == [] and network.injections == []

    def test_drained_initially(self):
        assert Network(small_net()).drained()


class TestSinglePacket:
    def test_be_packet_delivered_intact(self):
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        packet = be_packet(cfg, src=0, dest=cfg.index(2, 1), seq=7)
        driver.send(packet, vc=2)
        driver.run_until_drained()
        assert len(driver.delivered) == 1
        router, got, _cycle = driver.delivered[0]
        assert router == packet.dest
        assert got == packet

    def test_local_delivery_same_router_not_allowed_by_driver(self):
        # dest == src would require a self-stream; routing sends it LOCAL
        # immediately. It still must work through the fabric.
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        packet = be_packet(cfg, src=5, dest=5)
        driver.send(packet, vc=2)
        driver.run_until_drained()
        assert driver.delivered[0][1] == packet

    def test_head_pipeline_latency(self):
        """Hand-traced timing of the head flit through idle routers.

        offer in cycle t -> local queue push end of t; allocation end of
        t+1; grant/transfer end of t+2; so each router adds 2 cycles and
        the head ejects at t + 2*(hops+1).
        """
        cfg = small_net(topology="mesh")
        network = Network(cfg)
        driver = PacketDriver(network)
        src, dest = cfg.index(0, 0), cfg.index(3, 0)  # 3 hops east
        driver.send(be_packet(cfg, src, dest), vc=2)
        driver.run_until_drained()
        head_eject = [e for e in network.ejections if e.router == dest][0]
        inject = network.injections[0]
        hops = 3
        # The head lands in the source's local queue in the injection
        # cycle, then every one of the hops+1 routers adds one allocation
        # cycle and one transfer cycle.
        assert head_eject.cycle - inject.cycle == 2 * (hops + 1)

    def test_flits_stream_one_per_cycle_when_unblocked(self):
        cfg = small_net(topology="mesh")
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(1, 0)
        driver.send(be_packet(cfg, 0, dest, nbytes=10), vc=2)
        driver.run_until_drained()
        ejected = [e.cycle for e in network.ejections if e.router == dest]
        assert len(ejected) == 7
        # After the head, the pipeline streams one flit per cycle.
        assert [c - ejected[0] for c in ejected] == list(range(7))


class TestWormholeInvariants:
    def test_conservation_under_load(self):
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        import random

        rng = random.Random(42)
        n_packets = 30
        for seq in range(n_packets):
            src = rng.randrange(cfg.n_routers)
            dest = rng.randrange(cfg.n_routers)
            driver.send(be_packet(cfg, src, dest, nbytes=rng.choice([2, 10, 20]), seq=seq), vc=rng.choice([2, 3]))
        driver.run_until_drained()
        assert len(driver.delivered) == n_packets
        assert len(network.injections) == len(network.ejections)

    def test_per_vc_stream_order_preserved(self):
        """Packets sent back-to-back on one VC arrive in order."""
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(3, 3)
        for seq in range(5):
            driver.send(be_packet(cfg, 0, dest, seq=seq), vc=2)
        driver.run_until_drained()
        seqs = [p.seq for _, p, _ in driver.delivered]
        assert seqs == sorted(seqs)

    def test_two_sources_same_destination(self):
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(2, 2)
        driver.send(be_packet(cfg, cfg.index(0, 2), dest, nbytes=40, seq=1), vc=2)
        driver.send(be_packet(cfg, cfg.index(2, 0), dest, nbytes=40, seq=2), vc=2)
        driver.run_until_drained()
        assert {p.seq for _, p, _ in driver.delivered} == {1, 2}

    def test_queue_depth_2_still_correct(self):
        cfg = small_net(router=RouterConfig(queue_depth=2))
        network = Network(cfg)
        driver = PacketDriver(network)
        driver.send(be_packet(cfg, 0, cfg.index(3, 2), nbytes=30), vc=2)
        driver.send(be_packet(cfg, 1, cfg.index(3, 2), nbytes=30, seq=1), vc=3)
        driver.run_until_drained()
        assert len(driver.delivered) == 2


class TestGuaranteedThroughput:
    def test_gt_packet_keeps_vc_end_to_end(self):
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(2, 0)
        driver.send(gt_packet(cfg, 0, dest, nbytes=16), vc=0)
        driver.run_until_drained()
        vcs = {e.vc for e in network.ejections if e.router == dest}
        assert vcs == {0}

    def test_gt_on_be_vc_raises(self):
        cfg = small_net()
        network = Network(cfg)
        driver = PacketDriver(network)
        driver.send(gt_packet(cfg, 0, 5, nbytes=4), vc=3)  # VC 3 is BE-only
        with pytest.raises(ProtocolError, match="GT head on non-GT VC"):
            driver.run(20)

    def test_gt_and_be_share_physical_link(self):
        cfg = small_net(topology="mesh")
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(3, 0)
        driver.send(gt_packet(cfg, 0, dest, nbytes=64, seq=1), vc=0)
        driver.send(be_packet(cfg, 0, dest, nbytes=64, seq=2), vc=2)
        driver.run_until_drained()
        classes = {(p.pclass, p.seq) for _, p, _ in driver.delivered}
        assert len(classes) == 2


class TestBackpressure:
    def test_no_overflow_under_hotspot(self):
        """Everyone floods one destination; room masks must prevent any
        queue overflow (which would raise ProtocolError)."""
        cfg = small_net(router=RouterConfig(queue_depth=2))
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(1, 1)
        seq = 0
        for src in range(cfg.n_routers):
            if src == dest:
                continue
            for _ in range(2):
                driver.send(be_packet(cfg, src, dest, nbytes=20, seq=seq % 256), vc=2 + (seq % 2))
                seq += 1
        driver.run_until_drained()
        assert len(driver.delivered) == seq

    def test_access_delay_reported_when_network_busy(self):
        cfg = small_net(router=RouterConfig(queue_depth=2))
        network = Network(cfg)
        driver = PacketDriver(network)
        dest = cfg.index(1, 1)
        for src in (0, 2, 3):
            driver.send(be_packet(cfg, src, dest, nbytes=60), vc=2)
        driver.run_until_drained()
        assert max(r.access_delay for r in network.injections) > 0


class TestOfferSemantics:
    def test_offer_rejected_while_pending(self):
        cfg = small_net()
        network = Network(cfg)
        flit = Header(1, 0).head_flit()
        assert network.offer(0, 2, flit)
        assert not network.offer(0, 2, flit)
        assert network.iface_states[0].stalled == 1
        assert network.injection_pending(0, 2)

    def test_offer_accepts_after_send(self):
        cfg = small_net()
        network = Network(cfg)
        flit = Header(1, 0).head_flit()
        network.offer(0, 2, flit)
        network.step()  # the interface sends it into the local queue
        assert not network.injection_pending(0, 2)
        assert network.offer(0, 2, Flit(FlitType.BODY, 1))


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_random_traffic_all_delivered(data):
    """Property: any batch of random BE/GT packets is delivered intact."""
    cfg = NetworkConfig(3, 3, topology=data.draw(st.sampled_from(["torus", "mesh"])))
    network = Network(cfg)
    driver = PacketDriver(network)
    n = data.draw(st.integers(1, 12))
    expect = []
    for seq in range(n):
        src = data.draw(st.integers(0, cfg.n_routers - 1))
        dest = data.draw(st.integers(0, cfg.n_routers - 1))
        nbytes = data.draw(st.sampled_from([2, 10, 24]))
        packet = be_packet(cfg, src, dest, nbytes=nbytes, seq=seq)
        driver.send(packet, vc=data.draw(st.sampled_from([2, 3])))
        expect.append(packet)
    driver.run_until_drained()
    got = sorted((p.src, p.dest, p.seq, p.payload) for _, p, _ in driver.delivered)
    want = sorted((p.src, p.dest, p.seq, p.payload) for p in expect)
    assert got == want
