"""Tests for NoC configuration, flit encodings and packets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc import NetworkConfig, Port, RouterConfig
from repro.noc.flit import (
    Flit,
    FlitType,
    Header,
    SourceInfo,
    decode_link_word,
    encode_link_word,
    link_word_type,
)
from repro.noc.packet import (
    BE_PAYLOAD_BYTES,
    GT_PAYLOAD_BYTES,
    Packet,
    PacketClass,
    Reassembler,
    flits_per_packet,
    segment,
)


class TestRouterConfig:
    def test_paper_defaults(self):
        cfg = RouterConfig()
        assert cfg.n_ports == 5
        assert cfg.n_vcs == 4
        assert cfg.queue_depth == 4
        assert cfg.flit_width == 18
        assert cfg.link_width == 20
        assert cfg.n_queues == 20
        assert cfg.queue_index_bits == 5
        assert cfg.count_bits == 3
        assert cfg.pointer_bits == 2

    def test_fig1_queue_depth_2(self):
        cfg = RouterConfig(queue_depth=2)
        assert cfg.count_bits == 2
        assert cfg.pointer_bits == 1

    def test_be_vcs_complement_gt(self):
        cfg = RouterConfig(gt_vcs=frozenset({0, 1}))
        assert cfg.be_vcs == (2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RouterConfig(n_ports=1)
        with pytest.raises(ValueError):
            RouterConfig(queue_depth=0)
        with pytest.raises(ValueError):
            RouterConfig(data_width=8)
        with pytest.raises(ValueError):
            RouterConfig(gt_vcs=frozenset({7}))


class TestNetworkConfig:
    def test_coords_index_roundtrip(self):
        net = NetworkConfig(6, 6)
        for i in range(36):
            x, y = net.coords(i)
            assert net.index(x, y) == i

    def test_min_and_max_sizes(self):
        NetworkConfig(1, 2)  # paper: "from 1-by-2"
        NetworkConfig(16, 16)  # 256 routers, the simulator maximum
        with pytest.raises(ValueError):
            NetworkConfig(1, 1)
        with pytest.raises(ValueError):
            NetworkConfig(17, 2)

    def test_bad_topology(self):
        with pytest.raises(ValueError):
            NetworkConfig(4, 4, topology="hypercube")

    def test_out_of_range_lookups(self):
        net = NetworkConfig(4, 4)
        with pytest.raises(IndexError):
            net.coords(16)
        with pytest.raises(IndexError):
            net.index(4, 0)

    def test_port_opposites(self):
        assert Port.NORTH.opposite == Port.SOUTH
        assert Port.EAST.opposite == Port.WEST
        assert Port.LOCAL.opposite == Port.LOCAL


class TestFlit:
    def test_encode_decode_roundtrip(self):
        flit = Flit(FlitType.BODY, 0xBEEF)
        assert Flit.decode(flit.encode()) == flit

    def test_encode_overflow(self):
        with pytest.raises(ValueError):
            Flit(FlitType.BODY, 0x10000).encode()

    def test_link_word(self):
        flit_word = Flit(FlitType.HEAD, 0x1234).encode()
        word = encode_link_word(3, flit_word)
        vc, fw = decode_link_word(word)
        assert (vc, fw) == (3, flit_word)
        assert link_word_type(word) == FlitType.HEAD

    def test_idle_wire_is_zero(self):
        assert link_word_type(0) == FlitType.IDLE

    @given(st.sampled_from(list(FlitType)), st.integers(0, 0xFFFF), st.integers(0, 3))
    def test_roundtrip_property(self, ftype, data, vc):
        flit = Flit(ftype, data)
        word = encode_link_word(vc, flit.encode())
        vc2, fw = decode_link_word(word)
        assert vc2 == vc and Flit.decode(fw) == flit


class TestHeader:
    def test_roundtrip(self):
        h = Header(dest_x=5, dest_y=3, gt=True, tag=77)
        assert Header.decode(h.encode()) == h

    def test_bounds(self):
        with pytest.raises(ValueError):
            Header(16, 0).encode()
        with pytest.raises(ValueError):
            Header(0, 0, tag=128).encode()

    @given(st.integers(0, 15), st.integers(0, 15), st.booleans(), st.integers(0, 127))
    def test_roundtrip_property(self, x, y, gt, tag):
        h = Header(x, y, gt, tag)
        assert Header.decode(h.encode()) == h

    def test_source_info_roundtrip(self):
        s = SourceInfo(3, 9, 200)
        assert SourceInfo.decode(s.encode()) == s


class TestPacket:
    def setup_method(self):
        self.net = NetworkConfig(6, 6)

    def test_paper_packet_lengths(self):
        # 16-bit data path: 2 bytes/flit, +HEAD +source-info BODY.
        assert flits_per_packet(BE_PAYLOAD_BYTES) == 7
        assert flits_per_packet(GT_PAYLOAD_BYTES) == 130

    def test_segment_structure(self):
        packet = Packet(src=0, dest=7, pclass=PacketClass.BE, payload=bytes(10))
        flits = segment(packet, self.net)
        assert len(flits) == 7
        assert flits[0].ftype == FlitType.HEAD
        assert all(f.ftype == FlitType.BODY for f in flits[1:-1])
        assert flits[-1].ftype == FlitType.TAIL
        header = Header.decode(flits[0].data)
        assert self.net.index(header.dest_x, header.dest_y) == 7
        assert not header.gt

    def test_gt_flag_in_header(self):
        packet = Packet(src=0, dest=7, pclass=PacketClass.GT, payload=bytes(4))
        header = Header.decode(segment(packet, self.net)[0].data)
        assert header.gt

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dest=1, pclass=PacketClass.BE, payload=b"")

    def test_reassembly_roundtrip(self):
        packet = Packet(
            src=5, dest=30, pclass=PacketClass.BE, payload=bytes(range(10)), tag=3, seq=9
        )
        flits = segment(packet, self.net)
        sink = Reassembler(self.net)
        result = None
        for i, flit in enumerate(flits):
            result = sink.push(vc=2, flit=flit, cycle=100 + i)
        assert result == packet
        assert sink.completed[0][1] == 2  # vc
        assert sink.completed[0][2] == 100 + len(flits) - 1

    def test_reassembly_interleaved_vcs(self):
        p1 = Packet(src=1, dest=2, pclass=PacketClass.BE, payload=bytes(4), seq=1)
        p2 = Packet(src=3, dest=2, pclass=PacketClass.BE, payload=bytes(6), seq=2)
        f1, f2 = segment(p1, self.net), segment(p2, self.net)
        sink = Reassembler(self.net)
        # interleave flits of the two VCs
        stream = []
        for i in range(max(len(f1), len(f2))):
            if i < len(f1):
                stream.append((0, f1[i]))
            if i < len(f2):
                stream.append((1, f2[i]))
        done = [p for vc, f in stream if (p := sink.push(vc, f, 0)) is not None]
        assert {p.seq for p in done} == {1, 2}

    def test_protocol_errors(self):
        from repro.noc.packet import ProtocolError

        sink = Reassembler(self.net)
        with pytest.raises(ProtocolError):
            sink.push(0, Flit(FlitType.BODY, 0), 0)
        sink.push(0, Header(1, 1).head_flit(), 0)
        with pytest.raises(ProtocolError):
            sink.push(0, Header(1, 1).head_flit(), 1)

    @given(st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0))
    def test_segment_reassemble_property(self, payload):
        packet = Packet(src=0, dest=35, pclass=PacketClass.BE, payload=payload)
        sink = Reassembler(self.net)
        result = None
        for flit in segment(packet, self.net):
            result = sink.push(0, flit, 0)
        assert result is not None and result.payload == payload
