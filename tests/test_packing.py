"""Tests for repro.bits.packing (StructLayout / field packing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import ArrayField, BitVector, Field, StructLayout, bv
from repro.bits.packing import flatten_offsets


@pytest.fixture
def flit_layout():
    return StructLayout("flit", [Field("data", 16), Field("type", 2)])


@pytest.fixture
def router_like_layout(flit_layout):
    return StructLayout(
        "router",
        [
            ArrayField("queues", ArrayField("entries", flit_layout, 4), 3),
            Field("pointer", 5),
            StructLayout("flags", [Field("busy", 1), Field("error", 1)]),
        ],
    )


class TestLayoutBasics:
    def test_total_width(self, flit_layout):
        assert flit_layout.total_width == 18

    def test_nested_total_width(self, router_like_layout):
        assert router_like_layout.total_width == 3 * 4 * 18 + 5 + 2

    def test_offsets_lsb_first(self, flit_layout):
        assert flit_layout.offset_of("data") == 0
        assert flit_layout.offset_of("type") == 16

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("bad", [Field("x", 1), Field("x", 2)])

    def test_member_lookup(self, flit_layout):
        assert flit_layout.member("data").width == 16
        with pytest.raises(KeyError):
            flit_layout.member("nope")

    def test_describe_mentions_members(self, router_like_layout):
        text = router_like_layout.describe()
        assert "queues" in text and "pointer" in text and "221" in text


class TestPacking:
    def test_scalar_pack_unpack(self, flit_layout):
        word = flit_layout.pack({"data": 0xBEEF, "type": 2})
        assert word.width == 18
        assert flit_layout.unpack(word) == {"data": 0xBEEF, "type": 2}

    def test_pack_order(self, flit_layout):
        word = flit_layout.pack({"data": 0xFFFF, "type": 0})
        assert word.value == 0xFFFF
        word = flit_layout.pack({"data": 0, "type": 3})
        assert word.value == 3 << 16

    def test_pack_bitvector_values(self, flit_layout):
        word = flit_layout.pack({"data": bv(16, 1), "type": bv(2, 1)})
        assert flit_layout.unpack(word) == {"data": 1, "type": 1}

    def test_pack_width_mismatch(self, flit_layout):
        with pytest.raises(ValueError):
            flit_layout.pack({"data": bv(8, 1), "type": 0})

    def test_pack_value_overflow(self, flit_layout):
        with pytest.raises(ValueError):
            flit_layout.pack({"data": 1 << 16, "type": 0})

    def test_missing_member(self, flit_layout):
        with pytest.raises(KeyError):
            flit_layout.pack({"data": 0})

    def test_unknown_member(self, flit_layout):
        with pytest.raises(KeyError):
            flit_layout.pack({"data": 0, "type": 0, "bogus": 1})

    def test_unpack_wrong_width(self, flit_layout):
        with pytest.raises(ValueError):
            flit_layout.unpack(bv(17, 0))

    def test_array_pack_roundtrip(self, router_like_layout):
        values = {
            "queues": [
                [{"data": q * 10 + e, "type": e % 4} for e in range(4)]
                for q in range(3)
            ],
            "pointer": 21,
            "flags": {"busy": 1, "error": 0},
        }
        word = router_like_layout.pack(values)
        assert router_like_layout.unpack(word) == values

    def test_array_length_mismatch(self, flit_layout):
        layout = StructLayout("a", [ArrayField("xs", Field("x", 4), 3)])
        with pytest.raises(ValueError):
            layout.pack({"xs": [1, 2]})

    def test_array_type_error(self):
        layout = StructLayout("a", [ArrayField("xs", Field("x", 4), 3)])
        with pytest.raises(TypeError):
            layout.pack({"xs": "abc"})

    def test_negative_scalar_wraps(self, flit_layout):
        word = flit_layout.pack({"data": -1, "type": 0})
        assert flit_layout.unpack(word)["data"] == 0xFFFF


class TestFlattenOffsets:
    def test_leaves_cover_width_exactly(self, router_like_layout):
        leaves = flatten_offsets(router_like_layout)
        covered = sum(w for _, _, w in leaves)
        assert covered == router_like_layout.total_width
        # Offsets are disjoint and sorted coverage of [0, total)
        spans = sorted((off, off + w) for _, off, w in leaves)
        position = 0
        for start, end in spans:
            assert start == position
            position = end
        assert position == router_like_layout.total_width

    def test_names_are_dotted_and_indexed(self, router_like_layout):
        names = [n for n, _, _ in flatten_offsets(router_like_layout)]
        assert "queues[0][0].data" in names
        assert "flags.busy" in names


# -- property test: random layouts roundtrip ---------------------------------

scalar_fields = st.integers(min_value=1, max_value=24).map(lambda w: ("field", w))


@st.composite
def random_layout(draw, depth=2):
    n = draw(st.integers(min_value=1, max_value=4))
    members = []
    for i in range(n):
        kind = draw(st.sampled_from(["field", "array", "struct"] if depth else ["field"]))
        if kind == "field":
            members.append(Field(f"f{i}", draw(st.integers(min_value=1, max_value=24))))
        elif kind == "array":
            element = Field("e", draw(st.integers(min_value=1, max_value=8)))
            members.append(ArrayField(f"a{i}", element, draw(st.integers(min_value=1, max_value=4))))
        else:
            members.append(
                StructLayout(f"s{i}", draw(random_layout(depth=depth - 1)).members)
            )
    return StructLayout("root", members)


@st.composite
def layout_values(draw, member):
    if isinstance(member, Field):
        return draw(st.integers(min_value=0, max_value=(1 << member.width) - 1))
    if isinstance(member, ArrayField):
        return [draw(layout_values(member.element)) for _ in range(member.count)]
    return {m.name: draw(layout_values(m)) for m in member.members}


@given(st.data())
def test_random_layout_roundtrip(data):
    layout = data.draw(random_layout())
    values = data.draw(layout_values(layout))
    word = layout.pack(values)
    assert word.width == layout.total_width
    assert layout.unpack(word) == values
