"""Determinism contract of the process-parallel sweep runner.

:func:`repro.experiments.parallel.parallel_map` promises results in
submission order, byte-identical to the serial loop, with a silent
serial fallback when worker processes cannot be used — and *no*
swallowing of real experiment failures.  These tests pin each clause,
then assert byte equality on the real sweeps built on top of it
(Figure-1 load sweep, traffic-pattern sweep, multi-seed fault
campaigns).
"""

import os

import pytest

from repro.experiments import fig1, patterns
from repro.experiments.parallel import (
    WORKERS_ENV,
    chunked,
    parallel_map,
    resolve_workers,
)
from repro.faults import CampaignConfig
from repro.platform import StageProfiler


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"point {x} failed")


class TestParallelMap:
    def test_order_preserved_serial(self):
        assert parallel_map(square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_order_preserved_parallel(self):
        assert parallel_map(square, range(10), workers=4) == [
            x * x for x in range(10)
        ]

    def test_empty_and_single(self):
        assert parallel_map(square, [], workers=4) == []
        assert parallel_map(square, [7], workers=4) == [49]

    def test_unpicklable_fn_falls_back_to_serial(self):
        # A lambda cannot cross a process boundary; the sweep must
        # silently rerun serially and still return correct results.
        profiler = StageProfiler()
        result = parallel_map(lambda x: x + 1, range(6), workers=4, profiler=profiler)
        assert result == list(range(1, 7))

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="failed"):
            parallel_map(boom, range(4), workers=1)

    def test_profiler_counters(self):
        profiler = StageProfiler()
        parallel_map(square, range(5), workers=1, profiler=profiler)
        assert profiler.counters["points"] == 5
        assert profiler.counters["workers"] == 1
        assert profiler.seconds["sweep"] >= 0.0
        assert "sweep" in profiler.render()


class TestResolveWorkers:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_default_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


class TestChunked:
    def test_partition_preserves_order(self):
        items = list(range(11))
        chunks = chunked(items, 3)
        assert len(chunks) == 3
        assert [x for chunk in chunks for x in chunk] == items
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_degenerate(self):
        assert chunked([1, 2], 10) == [[1], [2]]
        assert chunked([], 3) == []


class TestSweepDeterminism:
    """Serial and parallel runs of the real sweeps are byte-identical."""

    def test_fig1_serial_equals_parallel(self):
        loads = (0.0, 0.06, 0.12)
        serial = fig1.run(loads, cycles=120, workers=1)
        parallel = fig1.run(loads, cycles=120, workers=4)
        assert serial.points == parallel.points

    def test_patterns_serial_equals_parallel(self):
        names = ("uniform", "transpose")
        serial = patterns.run(names, cycles=100, workers=1)
        parallel = patterns.run(names, cycles=100, workers=4)
        assert serial.points == parallel.points

    def test_campaign_sweep_deterministic(self):
        from repro.experiments.resilience import run_sweep

        base = CampaignConfig(
            width=3, height=3, n_faults=6, include_flap=False, spacing=3
        )
        serial = run_sweep([1, 2], base=base, workers=1)
        parallel = run_sweep([1, 2], base=base, workers=2)
        assert [r.config.seed for r in serial] == [1, 2]
        assert serial == parallel


class TestLaneBatching:
    """Wide default sweeps run on the batch engine's lane axis; the
    numbers must match the process path point for point."""

    def test_threshold(self):
        from repro.experiments.parallel import (
            LANE_BATCH_THRESHOLD,
            lane_batchable,
        )

        assert not lane_batchable(LANE_BATCH_THRESHOLD - 1)
        assert lane_batchable(LANE_BATCH_THRESHOLD)
        # an explicit worker count always keeps the process path
        assert not lane_batchable(LANE_BATCH_THRESHOLD + 4, workers=1)
        assert not lane_batchable(LANE_BATCH_THRESHOLD + 4, workers=4)

    def test_fig1_lane_sweep_matches_process_sweep(self):
        from dataclasses import asdict

        loads = (0.0, 0.04, 0.08, 0.12)
        process = fig1.run(loads, cycles=120, workers=1)
        laned = fig1.run(loads, cycles=120)  # 4 points, workers=None
        for p, l in zip(process.points, laned.points):
            dp, dl = asdict(p), asdict(l)
            # only the delta accounting differs: the batch engine runs
            # exactly three bulk-synchronous sweeps per cycle.
            dp.pop("extra_delta_fraction")
            assert dl.pop("extra_delta_fraction") == 2.0
            assert dp == dl

    def test_patterns_lane_sweep_matches_process_sweep(self):
        names = patterns.PATTERNS  # 4 patterns -> lane path by default
        process = patterns.run(names, cycles=100, workers=1)
        laned = patterns.run(names, cycles=100)
        assert process.points == laned.points

    def test_lane_sweep_profiled(self):
        profiler = StageProfiler()
        fig1.run((0.0, 0.04, 0.08, 0.12), cycles=60, profiler=profiler)
        assert profiler.counters["lanes"] == 4
        assert "sweep" in profiler.seconds
