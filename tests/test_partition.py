"""Partitioned large-network simulation: correctness gates.

The tentpole guarantee under test: sharding one NoC across K tile
workers behind the boundary switch is **bit-identical** to the
monolithic sequential simulator — snapshots, injection/ejection logs
and (in lockstep sync) per-cycle delta counts — including under
boundary-link SEUs and quarantine, in every transport (local lockstep,
local rounds, process pool with shared-memory plane or pipe fallback).

Plus the satellite surfaces: partition-map/manifest properties
(hypothesis-randomised), the CLI ``--partitions`` flags, the sweep
``engine_cls`` hook, and the packed-state memory preflight.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.errors import LivelockError
from repro.noc import NetworkConfig, RouterConfig
from repro.noc.config import Port
from repro.noc.topology import Topology
from repro.partition import (
    PartitionMap,
    PartitionedEngine,
    PartitionedEngineFactory,
    grid_partition,
    valid_partition_counts,
)
from repro.seqsim.sequential import SequentialNetwork
from tests.helpers import PacketDriver, be_packet


def torus(width=4, height=4, depth=4):
    return NetworkConfig(
        width, height, topology="torus", router=RouterConfig(queue_depth=depth)
    )


def mesh(width=4, height=4, depth=4):
    return NetworkConfig(
        width, height, topology="mesh", router=RouterConfig(queue_depth=depth)
    )


def mono(cfg):
    return SequentialNetwork(cfg, packed=False, optimize=True)


def random_schedule(cfg, seed, packets=25, horizon=50):
    rng = random.Random(seed)
    out = []
    for i in range(packets):
        src = rng.randrange(cfg.n_routers)
        dest = rng.randrange(cfg.n_routers)
        out.append(
            (
                rng.randrange(horizon),
                rng.choice(cfg.router.be_vcs),
                be_packet(cfg, src, dest, nbytes=rng.randrange(1, 12), seq=i),
            )
        )
    return out


def lockstep(cfg, engines, cycles=100, events=None, check_deltas=False,
             seed=0xA5):
    """Drive identical traffic into every engine; assert identical
    snapshots each cycle and identical logs at the end."""
    sched = random_schedule(cfg, seed)
    drivers = [PacketDriver(e) for e in engines]
    try:
        for c in range(cycles):
            if events and c in events:
                for e in engines:
                    events[c](e)
            for d, e in zip(drivers, engines):
                for when, vc, pkt in sched:
                    if when == c:
                        d.send(pkt, vc)
                d.pump()
                e.step()
            ref = engines[0].snapshot()
            for e in engines[1:]:
                assert e.snapshot() == ref, f"snapshot diverged at cycle {c}"
        ref_inj = [tuple(r.__dict__.items()) for r in engines[0].injections]
        ref_ej = [tuple(r.__dict__.items()) for r in engines[0].ejections]
        for e in engines[1:]:
            assert [tuple(r.__dict__.items()) for r in e.injections] == ref_inj
            assert [tuple(r.__dict__.items()) for r in e.ejections] == ref_ej
        if check_deltas:
            ref_d = engines[0].metrics.per_cycle
            for e in engines[1:]:
                assert e.metrics.per_cycle == ref_d, "delta counts diverged"
    finally:
        for e in engines:
            if hasattr(e, "close"):
                e.close()


class TestGridPartition:
    def test_tiles_cover_exactly_once(self):
        cfg = torus(4, 4)
        for k in valid_partition_counts(cfg):
            pmap = grid_partition(cfg, k)
            flat = sorted(r for tile in pmap.tiles for r in tile)
            assert flat == list(range(cfg.n_routers))

    def test_valid_counts_are_grid_divisors(self):
        assert valid_partition_counts(torus(4, 4)) == [2, 4, 8, 16]
        assert valid_partition_counts(torus(6, 6)) == [
            2, 3, 4, 6, 9, 12, 18, 36,
        ]

    def test_invalid_count_names_valid_ones(self):
        cfg = torus(4, 4)
        with pytest.raises(ValueError) as err:
            grid_partition(cfg, 3)
        assert "2, 4, 8, 16" in str(err.value)

    def test_boundary_links_are_directed_pairs(self):
        cfg = torus(4, 4)
        pmap = grid_partition(cfg, 2)
        links = pmap.boundary_links()
        # every directed boundary link has its reverse in the set
        topo = Topology(cfg)
        as_set = {(r, int(p)) for r, p, _nb in links}
        for r, p, nb in links:
            assert topo.neighbor(r, Port(p)) == nb
            assert (nb, int(Port(p).opposite)) in as_set

    def test_custom_map_rejects_bad_covers(self):
        cfg = torus(4, 4)
        with pytest.raises(ValueError):
            PartitionMap(cfg, ((0, 1), (1, 2)))  # router 1 twice
        with pytest.raises(ValueError):
            PartitionMap(cfg, (tuple(range(15)),))  # router 15 missing


class TestBoundaryManifest:
    """`Topology.extract_partition`: the boundary-port manifest,
    torus wrap-around links included."""

    def test_torus_wraparound_ports_in_manifest(self):
        cfg = torus(4, 4)
        topo = Topology(cfg)
        # the bottom two rows: y in {0, 1}
        tile = tuple(
            r for r in range(cfg.n_routers) if cfg.coords(r)[1] < 2
        )
        _sub, manifest = topo.extract_partition(tile)
        crossing = {(bp.router, bp.neighbor) for bp in manifest.ports}
        # the seam at y=1 -> y=2 and the wrap at y=0 -> y=3 both cross
        seam = [(cfg.index(x, 1), cfg.index(x, 2)) for x in range(4)]
        wrap = [(cfg.index(x, 0), cfg.index(x, 3)) for x in range(4)]
        for pair in seam + wrap:
            assert pair in crossing, f"missing boundary crossing {pair}"
        # east/west links stay internal: never in the manifest
        for bp in manifest.ports:
            assert cfg.coords(bp.router)[0] == cfg.coords(bp.neighbor)[0]

    def test_mesh_edge_has_no_wraparound(self):
        cfg = mesh(4, 4)
        topo = Topology(cfg)
        tile = tuple(
            r for r in range(cfg.n_routers) if cfg.coords(r)[1] < 2
        )
        _sub, manifest = topo.extract_partition(tile)
        crossing = {(bp.router, bp.neighbor) for bp in manifest.ports}
        assert crossing == {
            (cfg.index(x, 1), cfg.index(x, 2)) for x in range(4)
        }

    def test_export_import_names_mirror_between_tiles(self):
        cfg = torus(4, 4)
        topo = Topology(cfg)
        pmap = grid_partition(cfg, 2)
        manifests = [
            topo.extract_partition(tile)[1] for tile in pmap.tiles
        ]
        assert sorted(manifests[0].export_wire_names()) == sorted(
            manifests[1].import_wire_names()
        )
        assert sorted(manifests[0].import_wire_names()) == sorted(
            manifests[1].export_wire_names()
        )


class TestPartitionProperties:
    """Hypothesis: ANY partition map — grid or arbitrary shuffle — of a
    random torus/mesh covers every router exactly once, and every
    boundary channel shows up in exactly two manifests (once per side),
    with export/import wire-name multisets matching globally."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_map_covers_and_matches(self, data):
        width = data.draw(st.integers(2, 6), label="width")
        height = data.draw(st.integers(2, 6), label="height")
        kind = data.draw(st.sampled_from(["torus", "mesh"]), label="topology")
        cfg = NetworkConfig(
            width, height, topology=kind, router=RouterConfig(queue_depth=2)
        )
        n = cfg.n_routers
        k = data.draw(st.integers(2, min(4, n)), label="partitions")
        rng = random.Random(data.draw(st.integers(0, 2**32), label="seed"))
        routers = list(range(n))
        rng.shuffle(routers)
        cuts = sorted(rng.sample(range(1, n), k - 1))
        tiles = tuple(
            tuple(sorted(routers[a:b]))
            for a, b in zip([0] + cuts, cuts + [n])
        )
        pmap = PartitionMap(cfg, tiles)

        # cover exactly once
        assert sorted(r for tile in pmap.tiles for r in tile) == list(range(n))
        owner = pmap.owner()
        assert all(r in pmap.tiles[owner[r]] for r in range(n))

        topo = Topology(cfg)
        exports, imports = Counter(), Counter()
        channels = Counter()
        for tile in pmap.tiles:
            _sub, manifest = topo.extract_partition(tile)
            exports.update(manifest.export_wire_names())
            imports.update(manifest.import_wire_names())
            for bp in manifest.ports:
                key = min(
                    (bp.router, int(bp.port)),
                    (bp.neighbor, int(bp.neighbor_port)),
                )
                channels[key] += 1
        # every exported wire is imported by exactly one other tile
        assert exports == imports
        assert all(count == 1 for count in exports.values())
        # every boundary channel appears exactly twice, once per side
        assert all(count == 2 for count in channels.values())

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=5, deadline=None)
    def test_two_partitions_bit_identical_under_boundary_seu(self, seed):
        """Satellite gate: 2-partition lockstep vs monolithic on 4x4
        with a mid-run SEU on a boundary link, random traffic."""
        cfg = torus(4, 4)
        wire = random.Random(seed).choice(
            ["fwd:1.3", "room:1.3", "fwd:9.4", "room:9.4"]
        )

        def seu(e):
            e.inject_link_fault(wire, seed % 17)

        lockstep(
            cfg,
            [mono(cfg), PartitionedEngine(cfg, partitions=2)],
            cycles=60,
            events={20: seu},
            check_deltas=True,
            seed=seed,
        )


class TestBitIdentical:
    """The tentpole gate: partitioned == monolithic, all transports."""

    @pytest.mark.parametrize("k", [2, 4])
    def test_lockstep_4x4_including_delta_counts(self, k):
        cfg = torus(4, 4)
        lockstep(
            cfg,
            [mono(cfg), PartitionedEngine(cfg, partitions=k)],
            check_deltas=True,
        )

    @pytest.mark.parametrize("k", [2, 4])
    def test_rounds_4x4(self, k):
        cfg = torus(4, 4)
        lockstep(
            cfg,
            [mono(cfg), PartitionedEngine(cfg, partitions=k, sync="rounds")],
        )

    def test_lockstep_and_rounds_6x6(self):
        cfg = torus(6, 6, depth=2)
        lockstep(
            cfg,
            [
                mono(cfg),
                PartitionedEngine(cfg, partitions=4),
                PartitionedEngine(cfg, partitions=4, sync="rounds"),
            ],
            cycles=80,
        )

    def test_process_transport_4x4(self):
        cfg = torus(4, 4)
        lockstep(
            cfg,
            [
                mono(cfg),
                PartitionedEngine(cfg, partitions=4, transport="process"),
            ],
        )

    def test_process_pipe_fallback_4x4(self):
        cfg = torus(4, 4)
        engine = PartitionedEngine(
            cfg, partitions=2, transport="process", use_shm=False
        )
        assert engine.pool.shm_active is False
        lockstep(cfg, [mono(cfg), engine])

    def test_mesh_partitioned(self):
        cfg = mesh(4, 4)
        lockstep(
            cfg,
            [mono(cfg), PartitionedEngine(cfg, partitions=2)],
            check_deltas=True,
        )


class TestFaultEquivalence:
    """Boundary SEU at cycle 20 + boundary quarantine at cycle 45 —
    still bit-identical in every mode (the ISSUE's fault gate)."""

    @staticmethod
    def _seu(e):
        e.inject_link_fault("fwd:1.3", 2)

    @staticmethod
    def _quarantine(e):
        e.quarantine_link(1, 3)

    @pytest.mark.parametrize(
        "make",
        [
            lambda cfg: PartitionedEngine(cfg, partitions=2),
            lambda cfg: PartitionedEngine(cfg, partitions=2, sync="rounds"),
            lambda cfg: PartitionedEngine(
                cfg, partitions=2, transport="process"
            ),
        ],
        ids=["lockstep", "rounds", "process"],
    )
    def test_seu_and_quarantine_at_boundary(self, make):
        cfg = torus(4, 4)
        lockstep(
            cfg,
            [mono(cfg), make(cfg)],
            events={20: self._seu, 45: self._quarantine},
        )

    def test_flap_fault_trips_identical_livelock_diagnosis(self):
        cfg = torus(4, 4)

        def diagnose(engine):
            try:
                engine.install_flap_fault(1, 3)
                with pytest.raises(LivelockError) as err:
                    engine.run(5)
                exc = err.value
                return (
                    exc.cycle,
                    exc.deltas,
                    exc.limit,
                    tuple(sorted(exc.suspect_wires)),
                )
            finally:
                if hasattr(engine, "close"):
                    engine.close()

        ref = diagnose(mono(cfg))
        assert set(ref[3]) == {"fwd:1.3", "room:5.1"}
        for make in (
            lambda: PartitionedEngine(cfg, partitions=2),
            lambda: PartitionedEngine(cfg, partitions=2, sync="rounds"),
            lambda: PartitionedEngine(cfg, partitions=2, transport="process"),
        ):
            assert diagnose(make()) == ref

    def test_quarantine_wires_repairs_diagnosed_link(self):
        cfg = torus(4, 4)
        engine = PartitionedEngine(cfg, partitions=2, sync="rounds")
        try:
            names = engine.install_flap_fault(1, 3)
            repaired = engine.quarantine_wires(names)
            assert (1, 3) in repaired
            engine.run(30)  # no livelock after the repair
            assert (1, 3) in engine.quarantined_links
        finally:
            engine.close()


class TestLinkLatency:
    """`link_latency >= 1` is the FireSim-style decoupled discipline:
    one round per cycle, values delayed L cycles — it drains, but it is
    a different machine (registered inter-tile channels)."""

    def test_latency_mode_runs_one_round_and_drains(self):
        cfg = torus(4, 4)
        engine = PartitionedEngine(cfg, partitions=2, link_latency=1)
        driver = PacketDriver(engine)
        try:
            for when, vc, pkt in random_schedule(cfg, 0xA5):
                driver.send(pkt, vc)
            driver.run_until_drained(5000)
            assert engine.drained()
            assert engine.mean_boundary_rounds() == 1.0
        finally:
            engine.close()

    def test_latency_requires_rounds(self):
        cfg = torus(4, 4)
        with pytest.raises(ValueError):
            PartitionedEngine(
                cfg, partitions=2, sync="lockstep", link_latency=1
            )


class TestEngineSurface:
    def test_registered_in_engine_registry(self):
        from repro.engines import list_engines, make_engine

        assert "partitioned" in {info.name for info in list_engines()}
        cfg = torus(4, 4)
        engine = make_engine("partitioned", cfg, partitions=2)
        try:
            assert engine.name == "partitioned"
            assert "2 tiles" in engine.layout_line()
        finally:
            engine.close()

    def test_layout_line_names_transport_and_sync(self):
        cfg = torus(4, 4)
        engine = PartitionedEngine(cfg, partitions=2)
        try:
            line = engine.layout_line()
            assert "boundary links" in line
            assert "local/lockstep" in line
        finally:
            engine.close()

    def test_sweep_engine_cls_hook(self):
        """fig1/pattern sweeps take the partitioned engine through their
        ``engine_cls`` extension point — points identical to the
        sequential engine's (lockstep sync is the exact protocol)."""
        from repro.experiments.patterns import run_pattern

        ref = run_pattern("transpose", cycles=80)
        part = run_pattern(
            "transpose", cycles=80, engine_cls=PartitionedEngineFactory(2)
        )
        assert part == ref

    def test_boundary_overhead_accounting(self):
        cfg = torus(4, 4)
        engine = PartitionedEngine(cfg, partitions=2, sync="rounds")
        driver = PacketDriver(engine)
        try:
            for when, vc, pkt in random_schedule(cfg, 0xA5):
                driver.send(pkt, vc)
            driver.run(60)
            assert len(engine.boundary_rounds) == 60
            assert engine.mean_boundary_rounds() >= 1.0
            assert 0.0 <= engine.boundary_sync_fraction() <= 1.0
        finally:
            engine.close()


class TestMemoryPreflight:
    """Satellite: the packed-state allocator estimates its footprint and
    fails with a plan (reduce --lanes / use --partitions), not an opaque
    numpy MemoryError."""

    def test_estimate_matches_actual_allocation(self):
        from repro.seqsim.arraystate import ArrayState, estimate_bytes

        cfg = torus(4, 4)
        state = ArrayState(cfg, lanes=3)
        actual = sum(
            getattr(state, name).nbytes
            for name in (
                "mem", "rd", "wr", "count", "alloc", "queue_alloc",
                "arb_ptr", "alloc_ptr", "flags", "inj_word", "inj_valid",
                "rr_ptr", "delay", "eject_word", "eject_valid", "stalled",
            )
        )
        assert estimate_bytes(cfg, 3) == actual

    def test_memoryerror_wraps_with_suggestion(self, monkeypatch):
        import numpy as np

        from repro.seqsim import arraystate

        def exploding_zeros(*args, **kwargs):
            raise MemoryError("Unable to allocate")

        monkeypatch.setattr(arraystate.np, "zeros", exploding_zeros)
        with pytest.raises(MemoryError) as err:
            arraystate.ArrayState(torus(4, 4), lanes=2)
        message = str(err.value)
        assert "--partitions" in message and "--lanes" in message
        assert f"{arraystate.estimate_bytes(torus(4, 4), 2):,}" in message


class TestCli:
    def test_simulate_partitions_prints_layout(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "simulate", "--width", "4", "--height", "4",
                "--partitions", "2", "--cycles", "30",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "partitions: 2 tiles" in out
        assert "boundary links" in out

    def test_simulate_invalid_partition_count_exits_2(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "simulate", "--width", "4", "--height", "4",
                "--partitions", "3", "--cycles", "10",
            ]
        )
        assert rc == 2
        output = capsys.readouterr()
        assert "2, 4, 8, 16" in output.out + output.err

    def test_simulate_partitions_conflicts_with_other_engine(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "simulate", "--width", "4", "--height", "4",
                "--engine", "batch", "--partitions", "2", "--cycles", "10",
            ]
        )
        assert rc == 2

    def test_simulate_process_transport(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "simulate", "--width", "4", "--height", "4",
                "--partitions", "2", "--transport", "process",
                "--cycles", "30",
            ]
        )
        assert rc == 0
        assert "process" in capsys.readouterr().out


@pytest.mark.partition_smoke
class TestPartitionSmoke:
    """Tiny 2-partition 4x4 runs in the default suite — the cheap
    always-on canary for the partition stack (select standalone with
    ``-m partition_smoke``)."""

    def test_tiny_local_partitioned_run(self):
        cfg = torus(4, 4)
        lockstep(
            cfg,
            [mono(cfg), PartitionedEngine(cfg, partitions=2)],
            cycles=40,
            check_deltas=True,
        )

    def test_tiny_process_partitioned_run(self):
        cfg = torus(4, 4)
        engine = PartitionedEngine(cfg, partitions=2, transport="process")
        driver = PacketDriver(engine)
        try:
            for when, vc, pkt in random_schedule(cfg, 0xB0, packets=10):
                driver.send(pkt, vc)
            driver.run(30)
            assert engine.cycle == 30
        finally:
            engine.close()
