"""Tests for the streaming five-phase pipeline (:mod:`repro.pipeline`).

The load-bearing property is *equivalence*: streaming the five phases
through rings — threaded or not, object or shared-memory transport,
any chunk size — must produce byte-identical engine state, logs, drain
counts and statistics to the monolithic
:class:`~repro.traffic.stimuli.TrafficDriver` loop it restructures.
"""

from __future__ import annotations

import copy
import threading
import time
import warnings

import pytest

from repro.engines import (
    BatchEngine,
    CycleEngine,
    SequentialEngine,
    drain_batched,
    run_batched,
)
from repro.experiments.common import fig1_gt_streams
from repro.noc import NetworkConfig, RouterConfig
from repro.noc.packet import segment
from repro.pipeline import (
    END,
    GenerateStage,
    LoadStage,
    SimulateStage,
    StageRing,
    pipelined_sweep,
    run_pipeline,
)
from repro.platform.cyclic_buffer import BufferOverrunError, BufferUnderrunError
from repro.stats import PacketLatencyTracker
from repro.traffic import (
    BernoulliBeTraffic,
    GtStreamTraffic,
    TrafficDriver,
    uniform_random,
)
from repro.traffic.stimuli import FlitEncoder, NetworkOverloadError


def small_net(queue_depth: int = 4) -> NetworkConfig:
    return NetworkConfig(
        4, 4, topology="torus", router=RouterConfig(queue_depth=queue_depth)
    )


def make_traffic(net, load=0.08, seed=0xA5, with_gt=False):
    be = BernoulliBeTraffic(net, load, uniform_random(net), seed=seed)
    gt = None
    if with_gt:
        table = fig1_gt_streams(net)
        gt = GtStreamTraffic(net, table.streams, period=200)
    return be, gt


def classic_run(engine, be, gt, cycles):
    """The monolithic reference loop: TrafficDriver run + drain."""
    driver = TrafficDriver(engine, be=be, gt=gt)
    tracker = PacketLatencyTracker(engine.cfg)
    driver.attach_tracker(tracker)
    driver.run(cycles)
    driver.be = None
    driver.gt = None
    done = driver.drain()
    tracker.collect(engine)
    return driver, tracker, done


def assert_engines_equal(a, b):
    assert a.cycle == b.cycle
    assert a.snapshot() == b.snapshot()
    assert list(a.injections) == list(b.injections)
    assert list(a.ejections) == list(b.ejections)


class TestStageRing:
    def test_fifo_and_close(self):
        ring = StageRing("t", capacity=4, timeout=1.0)
        ring.put(0, "a")
        ring.put(1, "b")
        ring.close()
        assert ring.get() == "a"
        assert ring.get() == "b"
        assert ring.get() is END

    def test_get_timeout_counts_underrun(self):
        ring = StageRing("t", capacity=2, timeout=0.05)
        with pytest.raises(BufferUnderrunError):
            ring.get()
        assert ring.stats()["underruns"] == 1
        assert ring.stats()["get_waits"] == 1

    def test_put_timeout_counts_overrun(self):
        ring = StageRing("t", capacity=1, timeout=0.05)
        ring.put(0, "a")
        with pytest.raises(BufferOverrunError):
            ring.put(1, "b")
        assert ring.stats()["overruns"] == 1
        assert ring.stats()["put_waits"] == 1

    def test_abort_wakes_blocked_consumer(self):
        ring = StageRing("t", capacity=2, timeout=10.0)
        errors = []

        def consumer():
            try:
                ring.get()
            except BufferUnderrunError as exc:
                errors.append(exc)

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        ring.abort()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(errors) == 1 and "abort" in str(errors[0])

    def test_peak_occupancy_tracked(self):
        ring = StageRing("t", capacity=4, timeout=1.0)
        for i in range(3):
            ring.put(i, i)
        assert ring.stats()["peak"] == 3
        assert ring.stats()["chunks"] == 3


class TestChunkedGenerators:
    def test_bernoulli_chunks_match_per_cycle(self):
        net = small_net()
        be_chunked, _ = make_traffic(net, load=0.12, seed=3)
        be_serial = copy.deepcopy(be_chunked)
        serial = [be_serial.packets_for_cycle(c) for c in range(500)]
        chunked = []
        lo = 0
        while lo < 500:  # deliberately odd chunk boundary
            hi = min(lo + 37, 500)
            chunked.extend(be_chunked.packets_for_cycles(lo, hi))
            lo = hi
        assert chunked == serial
        # the internal state advanced identically: the next packets agree
        assert be_chunked.packets_for_cycles(500, 510) == [
            be_serial.packets_for_cycle(c) for c in range(500, 510)
        ]

    def test_gt_chunks_match_per_cycle(self):
        net = small_net()
        _, gt_chunked = make_traffic(net, with_gt=True)
        gt_serial = copy.deepcopy(gt_chunked)
        serial = [gt_serial.packets_for_cycle(c) for c in range(450)]
        chunked = []
        lo = 0
        while lo < 450:
            hi = min(lo + 41, 450)
            chunked.extend(gt_chunked.packets_for_cycles(lo, hi))
            lo = hi
        assert chunked == serial


class TestFlitEncoder:
    def test_words_match_segment_encode(self):
        net = small_net()
        be, gt = make_traffic(net, load=0.15, seed=11, with_gt=True)
        encoder = FlitEncoder(net)
        dw = net.router.data_width
        packets = []
        for cycle in range(200):
            packets.extend(p for p, _vc in gt.packets_for_cycle(cycle))
            packets.extend(be.packets_for_cycle(cycle))
        assert packets
        for packet in packets:
            expected = tuple(f.encode(dw) for f in segment(packet, net))
            assert encoder.words(packet) == expected
            # cache-hit path returns the same words again
            assert encoder.words(packet) == expected


class TestPipelineEquivalence:
    @pytest.mark.parametrize("engine_cls", [SequentialEngine, CycleEngine])
    def test_streamed_matches_classic_driver(self, engine_cls):
        net = small_net()
        cycles = 400
        be, gt = make_traffic(net, with_gt=True)
        classic_engine = engine_cls(net)
        driver, classic_tracker, done = classic_run(
            classic_engine, copy.deepcopy(be), copy.deepcopy(gt), cycles
        )

        streamed_engine = engine_cls(net)
        report = run_pipeline(streamed_engine, [(be, gt)], cycles, chunk=64)
        assert_engines_equal(streamed_engine, classic_engine)
        assert report.done_cycles == [done]
        assert report.flits_loaded == driver.flits_generated
        assert report.trackers[0].samples == classic_tracker.samples
        assert report.trackers[0].stats() == classic_tracker.stats()

    def test_batch_lanes_match_classic_batched(self):
        net = small_net()
        cycles, lanes = 300, 4
        seeds = [0xA5 + i for i in range(lanes)]
        classic_engine = BatchEngine(net, lanes=lanes)
        drivers = [
            TrafficDriver(
                classic_engine.lane(i),
                be=BernoulliBeTraffic(
                    net, 0.08, uniform_random(net), seed=seeds[i]
                ),
            )
            for i in range(lanes)
        ]
        trackers = [PacketLatencyTracker(net) for _ in range(lanes)]
        for driver, tracker in zip(drivers, trackers):
            driver.attach_tracker(tracker)
        run_batched(classic_engine, drivers, cycles)
        for driver in drivers:
            driver.be = None
        done = drain_batched(classic_engine, drivers)
        for i, tracker in enumerate(trackers):
            tracker.collect(classic_engine.lane(i))

        streamed_engine = BatchEngine(net, lanes=lanes)
        traffic = [
            (BernoulliBeTraffic(net, 0.08, uniform_random(net), seed=s), None)
            for s in seeds
        ]
        report = run_pipeline(streamed_engine, traffic, cycles, chunk=64)
        assert streamed_engine.snapshot() == classic_engine.snapshot()
        assert report.done_cycles == list(done)
        for i in range(lanes):
            assert list(streamed_engine.lane_injections(i)) == list(
                classic_engine.lane_injections(i)
            )
            assert list(streamed_engine.lane_ejections(i)) == list(
                classic_engine.lane_ejections(i)
            )
            assert report.trackers[i].samples == trackers[i].samples

    def test_serial_fallback_identical_to_threaded(self):
        net = small_net()
        cycles = 300
        be, gt = make_traffic(net, with_gt=True)
        threaded_engine = SequentialEngine(net)
        threaded = run_pipeline(
            threaded_engine, [(copy.deepcopy(be), copy.deepcopy(gt))], cycles
        )
        serial_engine = SequentialEngine(net)
        serial = run_pipeline(
            serial_engine, [(be, gt)], cycles, threaded=False
        )
        assert_engines_equal(threaded_engine, serial_engine)
        assert threaded.done_cycles == serial.done_cycles
        assert threaded.flits_loaded == serial.flits_loaded
        assert threaded.trackers[0].samples == serial.trackers[0].samples
        assert threaded.profiler.threaded and not serial.profiler.threaded

    @pytest.mark.parametrize("chunk", [32, 128, 1000])
    def test_chunk_size_invariance(self, chunk):
        net = small_net()
        cycles = 200
        be, _ = make_traffic(net)
        reference_engine = SequentialEngine(net)
        _, ref_tracker, _ = classic_run(
            reference_engine, copy.deepcopy(be), None, cycles
        )
        engine = SequentialEngine(net)
        report = run_pipeline(engine, [(be, None)], cycles, chunk=chunk)
        assert_engines_equal(engine, reference_engine)
        assert report.trackers[0].samples == ref_tracker.samples

    def test_shm_transport_identical(self):
        from repro.pipeline.shm import ShmArrayRing, ShmUnavailableError

        try:
            ShmArrayRing("probe", slots=1, slot_words=8).close()
        except ShmUnavailableError:
            pytest.skip("shared memory unavailable on this platform")
        net = small_net()
        cycles, lanes = 250, 3
        traffic_a = [
            (BernoulliBeTraffic(net, 0.08, uniform_random(net), seed=5 + i), None)
            for i in range(lanes)
        ]
        traffic_b = copy.deepcopy(traffic_a)
        obj_engine = BatchEngine(net, lanes=lanes)
        obj = run_pipeline(obj_engine, traffic_a, cycles, chunk=50)
        shm_engine = BatchEngine(net, lanes=lanes)
        shm = run_pipeline(
            shm_engine, traffic_b, cycles, chunk=50, transport="shm"
        )
        assert shm_engine.snapshot() == obj_engine.snapshot()
        assert shm.done_cycles == obj.done_cycles
        for i in range(lanes):
            assert shm.trackers[i].samples == obj.trackers[i].samples
        # the bulk words actually travelled through shared memory
        assert shm.profiler.rings.get("l2s-shm", {}).get("arrays", 0) > 0

    def test_incremental_stats_match_end_of_run(self):
        net = small_net()
        be, gt = make_traffic(net, with_gt=True)
        engine = SequentialEngine(net)
        report = run_pipeline(engine, [(be, gt)], 300, chunk=64)
        # analyze-stage counters equal the full logs they never held
        assert report.analyze.inj_counts[0] == len(engine.injections)
        assert report.analyze.ej_counts[0] == len(engine.ejections)
        hist = report.histograms[0]
        samples = report.trackers[0].samples
        assert hist.total == len(samples)
        throughput = report.analyze.throughput(0, engine.cycle)
        assert throughput.flits_injected == len(engine.injections)
        assert throughput.flits_ejected == len(engine.ejections)


class TestPipelineErrors:
    def test_overload_root_cause_survives_abort(self):
        net = small_net(queue_depth=1)
        be = BernoulliBeTraffic(net, 0.95, uniform_random(net), seed=1)
        engine = SequentialEngine(net)
        with pytest.raises(NetworkOverloadError):
            run_pipeline(
                engine,
                [(be, None)],
                2000,
                chunk=64,
                stall_limit=50,
                ring_timeout=10.0,
            )

    def test_simulate_stage_out_of_sync(self):
        net = small_net()
        be, _ = make_traffic(net)
        generate = GenerateStage(net, [(be, None)])
        load = LoadStage(net)
        simulate = SimulateStage(SequentialEngine(net))
        chunk = load.process(generate.produce(5, 10))
        with pytest.raises(RuntimeError, match="out of sync"):
            simulate.process(chunk)

    def test_traffic_lane_mismatch(self):
        net = small_net()
        be, _ = make_traffic(net)
        engine = BatchEngine(net, lanes=3)
        with pytest.raises(ValueError, match="lanes"):
            run_pipeline(engine, [(be, None)], 50)


class TestPipelinedSweep:
    def test_results_in_item_order(self):
        items = list(range(12))
        assert pipelined_sweep(lambda x: x * x, items) == [
            x * x for x in items
        ]

    def test_fault_campaign_sweep_matches_serial(self):
        from repro.faults import CampaignConfig, run_campaign

        configs = [
            CampaignConfig(
                width=4,
                height=4,
                n_faults=6,
                seed=seed,
                load=0.10,
                include_flap=True,  # exercises the watchdog/quarantine path
            )
            for seed in (1, 2)
        ]
        streamed = pipelined_sweep(run_campaign, configs)
        serial = [run_campaign(cfg) for cfg in configs]
        assert streamed == serial

    def test_point_error_propagates(self):
        def bad(x):
            if x == 2:
                raise ValueError("boom at 2")
            return x

        with pytest.raises(ValueError, match="boom at 2"):
            pipelined_sweep(bad, range(6), ring_timeout=5.0)


class TestShmTransport:
    def _ring(self, **kwargs):
        from repro.pipeline.shm import ShmArrayRing, ShmUnavailableError

        try:
            return ShmArrayRing("test-ring", **kwargs)
        except ShmUnavailableError:
            pytest.skip("shared memory unavailable on this platform")

    def test_pack_unpack_roundtrip(self):
        from repro.pipeline.shm import pack_entries, unpack_entries

        net = small_net()
        be, gt = make_traffic(net, load=0.2, with_gt=True)
        generate = GenerateStage(net, [(be, gt), (copy.deepcopy(be), None)])
        load = LoadStage(net)
        chunk = load.process(generate.produce(0, 40))
        packed = pack_entries(chunk)
        rebuilt = unpack_entries(packed, chunk.start, chunk.stop, 2)

        def flat_words(entries):
            return [
                (lane, off, router, vc, word)
                for lane, lane_entries in enumerate(entries)
                for off, per_cycle in enumerate(lane_entries)
                for router, vc, words in per_cycle
                for word in words
            ]

        assert flat_words(rebuilt) == flat_words(chunk.entries)

    def test_array_ring_fifo_roundtrip(self):
        import numpy as np

        from repro.pipeline.shm import OPEN_RINGS

        ring = self._ring(slots=2, slot_words=64, timeout=1.0)
        arrays = [
            np.arange(12, dtype=np.int64).reshape(4, 3),
            np.array([[7, 8, 9, 10, 11]], dtype=np.int64),
            np.empty((0, 5), dtype=np.int64),
        ]
        ring.put_array(0, arrays[0])
        ring.put_array(1, arrays[1])
        assert (ring.get_array() == arrays[0]).all()
        ring.put_array(2, arrays[2])
        assert (ring.get_array() == arrays[1]).all()
        assert ring.get_array().shape == (0, 5)
        assert ring.stats()["arrays"] == 3
        ring.close()
        ring.close()  # idempotent
        assert ring not in OPEN_RINGS

    def test_oversized_array_rejected(self):
        import numpy as np

        with self._ring(slots=1, slot_words=8, timeout=0.2) as ring:
            with pytest.raises(ValueError, match="exceeds the slot size"):
                ring.put_array(0, np.arange(9, dtype=np.int64))

    def test_full_ring_blocks_then_times_out(self):
        import numpy as np

        from repro.pipeline.shm import ShmUnavailableError

        with self._ring(slots=1, slot_words=8, timeout=0.1) as ring:
            ring.put_array(0, np.arange(4, dtype=np.int64))
            with pytest.raises(ShmUnavailableError, match="no free slot"):
                ring.put_array(1, np.arange(4, dtype=np.int64))
            assert (ring.get_array() == np.arange(4)).all()
            ring.put_array(2, np.arange(3, dtype=np.int64))  # slot reusable


class TestStreamedExperimentSweeps:
    def test_fig1_stream_param_matches_batched(self):
        from repro.experiments import fig1

        loads = (0.0, 0.04, 0.08, 0.12)
        streamed = fig1.run(loads=loads, cycles=150, stream=True)
        batched = fig1.run(loads=loads, cycles=150, stream=False)
        assert streamed.points == batched.points

    def test_patterns_stream_param_matches_batched(self):
        from repro.experiments import patterns

        streamed = patterns.run(cycles=250, stream=True)
        batched = patterns.run(cycles=250, stream=False)
        assert streamed.points == batched.points

    def test_resilience_stream_matches_serial(self):
        from repro.experiments import resilience
        from repro.faults import CampaignConfig

        base = CampaignConfig(n_faults=6, include_flap=False)
        streamed = resilience.run_sweep((1, 2), base=base, stream=True)
        serial = resilience.run_sweep((1, 2), base=base, workers=1)
        assert streamed == serial


class TestOverlapCrosscheck:
    def _controller_report(self):
        from repro.platform import SimulationController

        net = small_net()
        be = BernoulliBeTraffic(net, 0.05, uniform_random(net), seed=7)
        controller = SimulationController(SequentialEngine(net), be=be)
        return controller.run(256)

    def test_modeled_overlap_accumulates(self):
        report = self._controller_report()
        assert report.modeled_overlap_seconds > 0
        assert 0.0 <= report.modeled_overlap_efficiency <= 1.0

    def test_crosscheck_warns_on_divergence(self):
        from repro.platform import PipelineProfiler, crosscheck_overlap

        report = self._controller_report()
        assert report.modeled_overlap_efficiency > 0.2  # workload premise

        # a pipeline run that realised no overlap at all: diverges
        stalled = PipelineProfiler()
        stalled.busy_seconds = {"simulate": 1.0, "generate": 1.0}
        stalled.wall_seconds = 2.0
        with pytest.warns(RuntimeWarning, match="diverges"):
            divergence = crosscheck_overlap(report, stalled)
        assert divergence == pytest.approx(report.modeled_overlap_efficiency)
        assert report.overlap_divergence == divergence
        assert report.measured_overlap_seconds == 0.0

        # a pipeline run matching the model: no warning
        agreeing = PipelineProfiler()
        agreeing.busy_seconds = {"simulate": 1.0, "generate": 1.0}
        agreeing.wall_seconds = 2.0 - report.modeled_overlap_efficiency
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert crosscheck_overlap(report, agreeing) == pytest.approx(0.0)


@pytest.mark.pipeline_smoke
class TestPipelineSmoke:
    """A deliberately tiny two-chunk streamed run — cheap enough for
    every CI pass, selectable standalone with ``-m pipeline_smoke``."""

    def test_two_chunk_streamed_run(self):
        net = small_net()
        be, _ = make_traffic(net, load=0.06, seed=9)
        engine = SequentialEngine(net)
        report = run_pipeline(engine, [(be, None)], 64, chunk=32)
        prof = report.profiler
        assert prof.items["simulate"] == 2
        assert prof.items["generate"] == 2
        assert report.analyze.inj_counts[0] > 0
        assert report.analyze.ej_counts[0] > 0
        assert engine.cycle >= 64  # measured cycles plus drain
        assert prof.wall_seconds > 0
        assert set(prof.rings) == {"g2l", "l2s", "s2r", "r2a"}


class TestAbortCleanup:
    """Aborting mid-stream — KeyboardInterrupt, watchdog, overload —
    must join every stage thread and release every shared-memory ring.
    The conftest leak fixture re-checks both after each test; these
    tests make the abort paths explicit."""

    def _interrupt_after(self, monkeypatch, n_chunks):
        calls = []
        original = SimulateStage.process

        def bomb(stage, item):
            calls.append(item)
            if len(calls) == n_chunks:
                raise KeyboardInterrupt("operator hit ctrl-c")
            return original(stage, item)

        monkeypatch.setattr(SimulateStage, "process", bomb)

    def test_keyboard_interrupt_mid_stream_joins_all_stages(self, monkeypatch):
        self._interrupt_after(monkeypatch, n_chunks=2)
        net = small_net()
        be, _ = make_traffic(net)
        engine = SequentialEngine(net)
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(engine, [(be, None)], 300, chunk=32, ring_timeout=10.0)
        leaked = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith("repro-pipeline-") and t.is_alive()
        ]
        assert leaked == []

    def test_keyboard_interrupt_with_shm_transport_closes_ring(self, monkeypatch):
        from repro.pipeline.shm import OPEN_RINGS

        self._interrupt_after(monkeypatch, n_chunks=2)
        net = small_net()
        be, _ = make_traffic(net)
        engine = SequentialEngine(net)
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(
                engine, [(be, None)], 300, chunk=32, ring_timeout=10.0,
                transport="shm",
            )
        assert not list(OPEN_RINGS)

    def test_overload_abort_with_shm_transport_closes_ring(self):
        from repro.pipeline.shm import OPEN_RINGS

        net = small_net(queue_depth=1)
        be = BernoulliBeTraffic(net, 0.95, uniform_random(net), seed=1)
        engine = SequentialEngine(net)
        with pytest.raises(NetworkOverloadError):
            run_pipeline(
                engine, [(be, None)], 2000, chunk=64, stall_limit=50,
                ring_timeout=10.0, transport="shm",
            )
        assert not list(OPEN_RINGS)


class TestShmLifecycle:
    """Satellite of the robustness PR: shared-memory segments must not
    outlive the interpreter, however it exits."""

    def _ring(self):
        from repro.pipeline.shm import ShmArrayRing, ShmUnavailableError

        try:
            return ShmArrayRing("lifecycle-test", slots=2, slot_words=16)
        except ShmUnavailableError:
            pytest.skip("shared memory unavailable on this platform")

    def test_atexit_sweep_closes_registered_rings(self):
        from repro.pipeline.shm import OPEN_RINGS, _close_open_rings

        ring = self._ring()
        assert ring in OPEN_RINGS
        _close_open_rings()
        assert ring.closed
        assert ring not in OPEN_RINGS

    def test_double_close_is_idempotent(self):
        ring = self._ring()
        ring.close()
        ring.close()  # second close must be a no-op
        assert ring.closed

    def test_abnormal_exit_leaves_no_leaked_segments(self, tmp_path):
        """An interpreter that dies without closing its ring must not
        trip the resource tracker's leaked-shared-memory warning: the
        atexit sweep unlinks the segment first."""
        import os
        import subprocess
        import sys

        code = (
            "from repro.pipeline.shm import ShmArrayRing, ShmUnavailableError\n"
            "try:\n"
            "    ring = ShmArrayRing('exit-test', slots=2, slot_words=16)\n"
            "except ShmUnavailableError:\n"
            "    print('SKIP')\n"
            "    raise SystemExit(0)\n"
            "print(ring.segment_name())\n"
            "# exit *without* closing: the atexit hook must clean up\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert result.returncode == 0
        name = result.stdout.strip().splitlines()[-1]
        if name == "SKIP":
            pytest.skip("shared memory unavailable on this platform")
        assert "leaked shared_memory" not in result.stderr
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(os.path.join("/dev/shm", name.lstrip("/")))
