"""Tests for the platform co-simulation: cyclic buffers and the
five-phase ARM control loop."""

import pytest

from repro.engines import CycleEngine, SequentialEngine
from repro.fpga.resources import OUTPUT_BUFFER_DEPTH, VC_STIMULI_BUFFER_DEPTH
from repro.noc import NetworkConfig, RouterConfig
from repro.platform import (
    BufferOverrunError,
    BufferUnderrunError,
    CyclicBuffer,
    PhaseProfiler,
    SimulationController,
)
from repro.stats import PacketLatencyTracker
from repro.traffic import BernoulliBeTraffic, GtStreamTraffic, hotspot, uniform_random
from repro.traffic.generators import reserve_shift_streams


class TestCyclicBuffer:
    def test_fifo_order_with_timestamps(self):
        buf = CyclicBuffer(4)
        for i, v in enumerate("abcd"):
            buf.write(i, v)
        assert buf.is_full
        entries = buf.drain()
        assert [e.payload for e in entries] == list("abcd")
        assert [e.timestamp for e in entries] == [0, 1, 2, 3]

    def test_overrun_protection(self):
        buf = CyclicBuffer(2)
        buf.write(0, 1)
        buf.write(0, 2)
        with pytest.raises(BufferOverrunError):
            buf.write(0, 3)
        assert not buf.try_write(0, 3)

    def test_underrun_protection(self):
        buf = CyclicBuffer(2)
        with pytest.raises(BufferUnderrunError):
            buf.read()
        with pytest.raises(BufferUnderrunError):
            buf.peek()
        assert buf.try_read() is None

    def test_wraparound_many_times(self):
        buf = CyclicBuffer(3)
        for i in range(50):
            buf.write(i, i)
            assert buf.read().payload == i
        assert buf.total_written == buf.total_read == 50

    def test_discard_all_moves_read_pointer(self):
        buf = CyclicBuffer(4)
        for i in range(3):
            buf.write(0, i)
        assert buf.discard_all() == 3
        assert buf.is_empty
        buf.write(9, "x")  # still usable afterwards
        assert buf.read().payload == "x"

    def test_peek_does_not_consume(self):
        buf = CyclicBuffer(2)
        buf.write(1, "a")
        assert buf.peek().payload == "a"
        assert buf.count == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CyclicBuffer(0)


class TestPhaseProfiler:
    def test_percentages_sum_to_100(self):
        prof = PhaseProfiler()
        prof.add("generate", 5.0)
        prof.add("analyze", 5.0)
        pct = prof.percentages()
        assert sum(pct.values()) == pytest.approx(100.0)
        assert pct["generate"] == pytest.approx(50.0)

    def test_unknown_phase(self):
        with pytest.raises(KeyError):
            PhaseProfiler().add("compile", 1.0)

    def test_render_contains_paper_labels(self):
        prof = PhaseProfiler()
        prof.add("simulate", 1.0)
        text = prof.render()
        assert "Generate stimuli (ARM)" in text
        assert "Simulation (FPGA)" in text

    def test_empty_profile(self):
        assert PhaseProfiler().percentages()["generate"] == 0.0


class TestSimulationController:
    def make(self, load=0.08, engine_cls=SequentialEngine, **kwargs):
        net = NetworkConfig(4, 4)
        engine = engine_cls(net)
        be = BernoulliBeTraffic(net, load, uniform_random(net), seed=13)
        controller = SimulationController(engine, be=be, **kwargs)
        return net, engine, controller

    def test_runs_in_periods(self):
        _net, engine, controller = self.make()
        report = controller.run(100)
        assert report.periods == -(-100 // controller.period)
        assert report.cycles == report.periods * controller.period
        assert engine.cycle == report.cycles

    def test_every_flit_flows_through_buffers(self):
        _net, engine, controller = self.make()
        report = controller.run(200)
        assert report.flits_generated > 0
        assert report.flits_loaded <= report.flits_generated
        assert report.flits_retrieved == len(engine.ejections)
        # Everything retrieved went through an output cyclic buffer.
        assert all(buf.is_empty for buf in controller.output_buffers)

    def test_profile_phases_populated(self):
        _net, _engine, controller = self.make(complex_analysis=True)
        report = controller.run(200)
        pct = report.profile.percentages()
        assert pct["generate"] > 0 and pct["load"] > 0
        assert report.modeled_cps > 0
        assert report.wall_seconds_modeled > 0

    def test_generate_dominates_like_table4(self):
        """'The majority of the time is spent in the generation of the
        data' (section 6)."""
        _net, _engine, controller = self.make(load=0.12, complex_analysis=True)
        report = controller.run(400)
        pct = report.profile.percentages()
        assert pct["generate"] == max(pct.values())
        assert pct["simulate"] < 10

    def test_uninteresting_routers_discarded(self):
        net = NetworkConfig(4, 4)
        engine = SequentialEngine(net)
        be = BernoulliBeTraffic(net, 0.1, uniform_random(net), seed=5)
        controller = SimulationController(engine, be=be, interesting_routers={0, 1})
        report = controller.run(200)
        assert report.flits_discarded > 0
        assert report.flits_retrieved + report.flits_discarded == len(engine.ejections)

    def test_latency_tracker_integration(self):
        net = NetworkConfig(4, 4)
        engine = SequentialEngine(net)
        be = BernoulliBeTraffic(net, 0.05, uniform_random(net), seed=31)
        tracker = PacketLatencyTracker(net)
        controller = SimulationController(engine, be=be, tracker=tracker)
        controller.run(300)
        assert tracker.delivered() > 0
        assert tracker.stats() is not None

    def test_gt_plus_be_workload(self):
        net = NetworkConfig(4, 4)
        engine = SequentialEngine(net)
        table = reserve_shift_streams(net, dx=1)
        gt = GtStreamTraffic(net, table.streams, period=200, payload_bytes=64)
        be = BernoulliBeTraffic(net, 0.05, uniform_random(net), seed=3)
        controller = SimulationController(engine, be=be, gt=gt)
        report = controller.run(400)
        assert report.flits_retrieved > 0
        assert not report.overloaded

    def test_overload_stops_simulation(self):
        net = NetworkConfig(2, 2, router=RouterConfig(queue_depth=1))
        engine = CycleEngine(net)
        be = BernoulliBeTraffic(net, 1.0, hotspot(net, target=0, fraction=1.0), seed=1)
        controller = SimulationController(engine, be=be, stall_limit=30)
        report = controller.run(5000)
        assert report.overloaded
        assert report.cycles < 5000 * 2  # stopped early, did not run away

    def test_deltas_counted_from_sequential_engine(self):
        _net, engine, controller = self.make(engine_cls=SequentialEngine)
        report = controller.run(100)
        assert report.total_deltas == engine.metrics.total_deltas
        assert report.total_deltas >= engine.cfg.n_routers * report.cycles

    def test_cycle_engine_uses_floor_estimate(self):
        _net, engine, controller = self.make(engine_cls=CycleEngine)
        report = controller.run(48)
        assert report.total_deltas == engine.cfg.n_routers * report.cycles

    def test_period_validation(self):
        net = NetworkConfig(2, 2)
        with pytest.raises(ValueError):
            SimulationController(
                CycleEngine(net), period=OUTPUT_BUFFER_DEPTH + 1
            )

    def test_default_period_is_buffer_size(self):
        net = NetworkConfig(2, 2)
        controller = SimulationController(CycleEngine(net))
        assert controller.period == min(VC_STIMULI_BUFFER_DEPTH, OUTPUT_BUFFER_DEPTH)
