"""Three-way engine equivalence: event-driven RTL vs cycle-based vs
FPGA-sequential — the reproduction's strongest correctness statement."""

import random

import pytest

from repro.engines import CycleEngine, RtlEngine, SequentialEngine, run_lockstep
from repro.engines.base import list_engines, make_engine
from repro.noc import NetworkConfig, RouterConfig
from repro.noc.flit import Flit
from repro.noc.packet import segment

from tests.helpers import be_packet, gt_packet


def traffic_from_packets(cfg, sends):
    """Build a traffic callback from [(cycle, vc, packet)].

    Flits of a packet are offered in consecutive cycles (one injection
    register load per cycle), starting at the scheduled cycle.
    """
    offers = {}
    for start, vc, packet in sends:
        for i, flit in enumerate(segment(packet, cfg)):
            offers.setdefault(start + i, []).append((packet.src, vc, flit))
    return lambda t: offers.get(t, [])


class TestRtlEngineAlone:
    def test_idle_snapshot_matches_cycle_engine(self):
        cfg = NetworkConfig(2, 2)
        rtl, cyc = RtlEngine(cfg), CycleEngine(cfg)
        for _ in range(3):
            rtl.step()
            cyc.step()
        assert rtl.snapshot() == cyc.snapshot()

    def test_offer_and_pending(self):
        cfg = NetworkConfig(2, 2)
        rtl = RtlEngine(cfg)
        flit = Flit.decode(0x2_0001)
        assert rtl.offer(0, 2, flit)
        assert not rtl.offer(0, 2, flit)
        assert rtl.injection_pending(0, 2)

    def test_multi_vc_offers_between_cycles(self):
        """Two offers to different VCs of one router in the same gap must
        both survive (regression for signal write-after-write)."""
        cfg = NetworkConfig(2, 2)
        rtl = RtlEngine(cfg)
        header = be_packet(cfg, 0, 1)
        flits = segment(header, cfg)
        assert rtl.offer(0, 2, flits[0])
        assert rtl.offer(0, 3, flits[0])
        rtl.step()
        # Both were loaded; one was sent (round-robin), one still pending.
        pending = [rtl.injection_pending(0, vc) for vc in (2, 3)]
        assert pending.count(True) == 1

    def test_kernel_stats_grow(self):
        cfg = NetworkConfig(2, 2)
        rtl = RtlEngine(cfg)
        rtl.run(3)
        assert rtl.kernel_stats.delta_cycles > 0
        assert rtl.kernel_stats.process_activations > 0


class TestThreeWayEquivalence:
    def three_engines(self, cfg):
        return [CycleEngine(cfg), SequentialEngine(cfg), RtlEngine(cfg)]

    def test_single_be_packet(self):
        cfg = NetworkConfig(2, 2)
        engines = self.three_engines(cfg)
        traffic = traffic_from_packets(cfg, [(0, 2, be_packet(cfg, 0, 3))])
        report = run_lockstep(engines, cycles=30, traffic=traffic)
        assert report, report.detail
        assert report.ejections == 7  # all flits delivered everywhere

    def test_gt_packet(self):
        cfg = NetworkConfig(2, 2)
        engines = self.three_engines(cfg)
        traffic = traffic_from_packets(cfg, [(0, 0, gt_packet(cfg, 0, 3, nbytes=12))])
        report = run_lockstep(engines, cycles=30, traffic=traffic)
        assert report, report.detail

    def test_random_traffic_torus(self):
        cfg = NetworkConfig(3, 2, topology="torus")
        rng = random.Random(2024)
        sends = []
        for seq in range(8):
            sends.append(
                (
                    rng.randrange(20),
                    rng.choice([2, 3]),
                    be_packet(
                        cfg,
                        rng.randrange(cfg.n_routers),
                        rng.randrange(cfg.n_routers),
                        nbytes=rng.choice([2, 8]),
                        seq=seq,
                    ),
                )
            )
        engines = self.three_engines(cfg)
        report = run_lockstep(engines, cycles=70, traffic=traffic_from_packets(cfg, sends))
        assert report, f"{report.diverged_engine}: {report.detail} @ {report.first_divergence}"
        assert report.ejections > 0

    def test_random_traffic_mesh_depth2(self):
        cfg = NetworkConfig(2, 3, topology="mesh", router=RouterConfig(queue_depth=2))
        rng = random.Random(77)
        sends = [
            (
                rng.randrange(15),
                rng.choice([2, 3]),
                be_packet(cfg, rng.randrange(6), rng.randrange(6), nbytes=8, seq=s),
            )
            for s in range(6)
        ]
        engines = self.three_engines(cfg)
        report = run_lockstep(engines, cycles=60, traffic=traffic_from_packets(cfg, sends))
        assert report, f"{report.diverged_engine}: {report.detail} @ {report.first_divergence}"

    def test_contention_same_destination(self):
        cfg = NetworkConfig(2, 2)
        sends = [
            (0, 2, be_packet(cfg, 0, 3, nbytes=16, seq=1)),
            (0, 2, be_packet(cfg, 1, 3, nbytes=16, seq=2)),
            (0, 3, be_packet(cfg, 2, 3, nbytes=16, seq=3)),
        ]
        engines = self.three_engines(cfg)
        report = run_lockstep(engines, cycles=80, traffic=traffic_from_packets(cfg, sends))
        assert report, f"{report.diverged_engine}: {report.detail} @ {report.first_divergence}"


class TestEngineRegistry:
    def test_engines_registered(self):
        names = {e.name for e in list_engines()}
        assert names == {"rtl", "cycle", "sequential", "batch", "partitioned"}

    def test_make_engine(self):
        cfg = NetworkConfig(2, 2)
        for name in ("rtl", "cycle", "sequential", "batch"):
            engine = make_engine(name, cfg)
            engine.step()
            assert engine.cycle == 1

    def test_unknown_engine(self):
        with pytest.raises(KeyError):
            make_engine("verilator", NetworkConfig(2, 2))

    def test_registry_describes_paper_analogues(self):
        analogues = " ".join(e.paper_analogue for e in list_engines())
        assert "VHDL" in analogues and "SystemC" in analogues and "FPGA" in analogues
