"""Tests for the event-driven RTL kernel (signals, processes, deltas, VCD)."""

import io

import pytest

from repro.bits import bv
from repro.rtl import DeltaOverflowError, Module, Simulator, VcdWriter
from repro.rtl.vcd import trace_to_string


def make_clocked_counter(sim, width=8):
    """A step-driven clock and a counter incremented on each rising edge."""
    clk = sim.signal("clk", 1)
    count = sim.signal("count", width)
    state = {"prev": 0}

    def driver():
        clk.assign(clk.uint ^ 1)

    sim.every_step("clkgen", driver)

    def counter():
        rising = state["prev"] == 0 and clk.uint == 1
        state["prev"] = clk.uint
        if rising:
            count.assign(count.uint + 1)

    sim.process("counter", counter, sensitivity=[clk])
    return clk, count


class TestSignals:
    def test_assignment_is_delta_delayed(self):
        sim = Simulator()
        a = sim.signal("a", 8)
        b = sim.signal("b", 8)

        def proc():
            # b follows a; within this activation, old values are seen.
            b.assign(a.uint + 1)

        sim.process("p", proc, sensitivity=[a])
        sim.initialize()
        assert b.uint == 1
        a.assign(5)
        sim.step()
        assert b.uint == 6

    def test_width_checked_assign(self):
        sim = Simulator()
        a = sim.signal("a", 4)
        with pytest.raises(ValueError):
            a.assign(bv(8, 0))

    def test_int_assign_range_checked(self):
        sim = Simulator()
        a = sim.signal("a", 4)
        with pytest.raises(ValueError):
            a.assign(16)

    def test_last_assignment_wins(self):
        sim = Simulator()
        a = sim.signal("a", 8)

        def proc():
            a.assign(1)
            a.assign(2)

        sim.process("p", proc)
        sim.initialize()
        assert a.uint == 2

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        sim.signal("x", 1)
        with pytest.raises(ValueError):
            sim.signal("x", 1)

    def test_find_signal(self):
        sim = Simulator()
        x = sim.signal("x", 1)
        assert sim.find_signal("x") is x


class TestKernel:
    def test_combinational_chain_settles(self):
        sim = Simulator()
        a = sim.signal("a", 8)
        b = sim.signal("b", 8)
        c = sim.signal("c", 8)
        sim.process("b_of_a", lambda: b.assign(a.uint + 1), sensitivity=[a])
        sim.process("c_of_b", lambda: c.assign(b.uint * 2 % 256), sensitivity=[b])
        sim.initialize()
        assert (b.uint, c.uint) == (1, 2)
        a.assign(10)
        sim.step()
        assert (b.uint, c.uint) == (11, 22)

    def test_clocked_counter_counts_rising_edges(self):
        sim = Simulator()
        _clk, count = make_clocked_counter(sim)
        sim.initialize()
        sim.step(20)  # 10 full clock periods
        assert count.uint == 10

    def test_combinational_loop_detected(self):
        sim = Simulator(max_deltas_per_step=50)
        a = sim.signal("a", 1)
        b = sim.signal("b", 1)
        # Classic oscillator: a = not b, b = a  ->  never settles.
        sim.process("na", lambda: a.assign(b.uint ^ 1), sensitivity=[b])
        sim.process("buf", lambda: b.assign(a.uint), sensitivity=[a])
        with pytest.raises(DeltaOverflowError):
            sim.initialize()

    def test_no_change_no_wake(self):
        sim = Simulator()
        a = sim.signal("a", 8)
        b = sim.signal("b", 8)
        activations = {"n": 0}

        def proc():
            activations["n"] += 1
            b.assign(a.uint)

        sim.process("p", proc, sensitivity=[a])
        sim.initialize()
        baseline = activations["n"]
        a.assign(0)  # same value: committed update is suppressed
        sim.step()
        assert activations["n"] == baseline

    def test_stats_accumulate(self):
        sim = Simulator()
        make_clocked_counter(sim)
        sim.initialize()
        sim.step(4)
        assert sim.stats.time_steps == 4
        assert sim.stats.delta_cycles > 4
        assert sim.stats.process_activations > 0
        sim.stats.reset()
        assert sim.stats.delta_cycles == 0


class TestModule:
    def test_hierarchy_paths(self):
        sim = Simulator()
        top = Module(sim, "top")
        child = Module(sim, "u0", parent=top)
        sig = child.signal("data", 8)
        assert sig.name == "top.u0.data"
        assert child.path == "top.u0"
        assert list(top.walk()) == [top, child]
        assert list(top.all_signals()) == [sig]
        assert child.local_signals() == {"data": sig}


class TestVcd:
    def test_vcd_structure(self):
        sim = Simulator()
        make_clocked_counter(sim, width=4)
        sim.initialize()
        text = trace_to_string(sim, 6)
        assert "$timescale" in text
        assert "$var wire 1" in text and "$var wire 4" in text
        assert "$enddefinitions" in text
        assert "#1" in text  # time markers present

    def test_vcd_records_changes(self):
        sim = Simulator()
        clk, count = make_clocked_counter(sim, width=4)
        sim.initialize()
        buffer = io.StringIO()
        writer = VcdWriter(sim, buffer, signals=[count])
        writer.start()
        sim.step(8)
        writer.close()
        text = buffer.getvalue()
        # count reaches 4 after 8 steps; binary change lines present
        assert "b0100 " in text
