"""Tests for RTL primitives: registers, FIFOs, round-robin arbiters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import Simulator
from repro.rtl.primitives import (
    ClockedRegister,
    RoundRobinArbiter,
    SyncFifo,
    round_robin_grant,
)


def make_clock(sim):
    clk = sim.signal("clk", 1)
    sim.every_step("clkgen", lambda: clk.assign(clk.uint ^ 1))
    return clk


def full_cycle(sim):
    """Advance one full clock period (rising then falling edge)."""
    sim.step(2)


class TestClockedRegister:
    def test_captures_on_rising_edge_only(self):
        sim = Simulator()
        clk = make_clock(sim)
        d = sim.signal("d", 8)
        reg = ClockedRegister(sim, "r", clk, d, 8)
        sim.initialize()
        d.assign(0x42)
        sim.step(1)  # rising edge: d was still 0 at sample time? assign is
        # delta-delayed; by edge delta, d==0x42 already committed in step's settle
        # of the prior assign... d.assign happened outside; commit occurs first
        # delta of this step, same delta as the edge evaluation sees old d.
        sim.step(1)  # falling edge
        sim.step(2)  # next full cycle captures 0x42
        assert reg.q.uint == 0x42

    def test_enable_gates_capture(self):
        sim = Simulator()
        clk = make_clock(sim)
        d = sim.signal("d", 8)
        en = sim.signal("en", 1, reset=0)
        reg = ClockedRegister(sim, "r", clk, d, 8, en=en)
        sim.initialize()
        d.assign(7)
        full_cycle(sim)
        full_cycle(sim)
        assert reg.q.uint == 0  # enable low: never captured
        en.assign(1)
        full_cycle(sim)
        full_cycle(sim)
        assert reg.q.uint == 7


class TestSyncFifo:
    def make(self, depth=4, width=8):
        sim = Simulator()
        clk = make_clock(sim)
        fifo = SyncFifo(sim, "q", clk, depth=depth, width=width)
        sim.initialize()
        return sim, fifo

    def push(self, sim, fifo, value):
        fifo.push.assign(1)
        fifo.data_in.assign(value)
        full_cycle(sim)
        fifo.push.assign(0)

    def pop(self, sim, fifo):
        head = fifo.head.uint
        fifo.pop.assign(1)
        full_cycle(sim)
        fifo.pop.assign(0)
        return head

    def test_starts_empty(self):
        _, fifo = self.make()
        assert fifo.empty.uint == 1
        assert fifo.count.uint == 0

    def test_fifo_order(self):
        sim, fifo = self.make()
        for v in [3, 1, 4, 1]:
            self.push(sim, fifo, v)
        assert fifo.count.uint == 4
        assert fifo.full.uint == 1
        assert [self.pop(sim, fifo) for _ in range(4)] == [3, 1, 4, 1]
        assert fifo.empty.uint == 1

    def test_simultaneous_push_pop_keeps_occupancy(self):
        sim, fifo = self.make()
        self.push(sim, fifo, 10)
        fifo.push.assign(1)
        fifo.data_in.assign(20)
        fifo.pop.assign(1)
        full_cycle(sim)
        fifo.push.assign(0)
        fifo.pop.assign(0)
        full_cycle(sim)
        assert fifo.count.uint == 1
        assert fifo.head.uint == 20

    def test_overflow_raises(self):
        sim, fifo = self.make(depth=1)
        self.push(sim, fifo, 1)
        with pytest.raises(RuntimeError, match="push on full"):
            self.push(sim, fifo, 2)

    def test_underflow_raises(self):
        sim, fifo = self.make()
        with pytest.raises(RuntimeError, match="pop on empty"):
            self.pop(sim, fifo)

    def test_peek(self):
        sim, fifo = self.make()
        self.push(sim, fifo, 5)
        self.push(sim, fifo, 6)
        assert fifo.peek(0).value == 5
        assert fifo.peek(1).value == 6
        with pytest.raises(IndexError):
            fifo.peek(2)

    def test_depth_must_be_positive(self):
        sim = Simulator()
        clk = make_clock(sim)
        with pytest.raises(ValueError):
            SyncFifo(sim, "q", clk, depth=0, width=8)


class TestRoundRobinGrantFunction:
    def test_no_requests(self):
        assert round_robin_grant(0, 8, 3) == -1

    def test_picks_next_after_pointer(self):
        assert round_robin_grant(0b10101, 5, 0) == 2
        assert round_robin_grant(0b10101, 5, 2) == 4
        assert round_robin_grant(0b10101, 5, 4) == 0

    def test_wraps(self):
        assert round_robin_grant(0b00001, 5, 4) == 0
        assert round_robin_grant(0b00001, 5, 0) == 0  # self again

    @given(
        st.integers(min_value=1, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=9),
    )
    def test_grant_is_a_requester(self, req, last):
        g = round_robin_grant(req, 10, last)
        assert (req >> g) & 1

    @given(
        st.integers(min_value=0, max_value=2**20 - 1),
        st.integers(min_value=0, max_value=19),
    )
    def test_bit_scan_equivalent(self, req, last):
        """The router's inlined bit-scan arbiter (noc.router.output_words)
        must agree with the canonical scan for every request/pointer pair."""
        if req:
            above = req >> (last + 1)
            if above:
                g = (above & -above).bit_length() + last
            else:
                g = (req & -req).bit_length() - 1
        else:
            g = -1
        assert g == round_robin_grant(req, 20, last)

    @given(st.integers(min_value=0, max_value=9))
    def test_fairness_cycle(self, start):
        """Granting everyone in turn visits all requesters in 10 steps."""
        req = (1 << 10) - 1
        seen = []
        pointer = start
        for _ in range(10):
            g = round_robin_grant(req, 10, pointer)
            seen.append(g)
            pointer = g
        assert sorted(seen) == list(range(10))


class TestRoundRobinArbiterRtl:
    def test_one_hot_grant_and_rotation(self):
        sim = Simulator()
        clk = make_clock(sim)
        req = sim.signal("req", 4)
        arb = RoundRobinArbiter(sim, "arb", clk, req, 4)
        sim.initialize()
        req.assign(0b1010)
        sim.step(2)
        first = arb.grant_index.uint
        assert first in (1, 3)
        assert arb.grant.uint == 1 << first
        sim.step(2)
        second = arb.grant_index.uint
        assert second in (1, 3) and second != first

    def test_no_request_no_grant(self):
        sim = Simulator()
        clk = make_clock(sim)
        req = sim.signal("req", 4)
        arb = RoundRobinArbiter(sim, "arb", clk, req, 4)
        sim.initialize()
        sim.step(4)
        assert arb.grant.uint == 0

    @settings(deadline=None)
    @given(st.integers(min_value=1, max_value=15))
    def test_grant_tracks_requests(self, reqval):
        sim = Simulator()
        clk = make_clock(sim)
        req = sim.signal("req", 4)
        arb = RoundRobinArbiter(sim, "arb", clk, req, 4)
        sim.initialize()
        req.assign(reqval)
        sim.step(2)
        assert (reqval >> arb.grant_index.uint) & 1
