"""Scale tests: the simulator's full 256-router range (section 6:
"can simulate any size of network from 2 to 256 routers")."""

import pytest

from repro.engines import CycleEngine, SequentialEngine
from repro.noc import NetworkConfig
from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random

from tests.helpers import PacketDriver, be_packet


class TestFullScale:
    def test_256_router_torus_runs(self):
        cfg = NetworkConfig(16, 16, topology="torus")
        engine = SequentialEngine(cfg)
        be = BernoulliBeTraffic(cfg, 0.03, uniform_random(cfg), seed=11)
        driver = TrafficDriver(engine, be=be)
        driver.run(40)
        assert engine.cycle == 40
        assert len(engine.injections) > 0
        # delta floor: 256 per cycle
        assert all(d >= 256 for d in engine.metrics.per_cycle)

    def test_256_router_delivery(self):
        cfg = NetworkConfig(16, 16)
        engine = CycleEngine(cfg)
        driver = PacketDriver(engine)
        # corner-to-corner worst-case paths
        pairs = [(0, 255), (255, 0), (15, 240), (120, 7)]
        for seq, (src, dest) in enumerate(pairs):
            driver.send(be_packet(cfg, src, dest, nbytes=10, seq=seq), vc=2)
        driver.run_until_drained(max_cycles=500)
        assert len(driver.delivered) == len(pairs)

    def test_minimum_1x2_network(self):
        cfg = NetworkConfig(1, 2)  # "from 1-by-2" (section 7.1)
        engine = CycleEngine(cfg)
        driver = PacketDriver(engine)
        driver.send(be_packet(cfg, 0, 1), vc=2)
        driver.send(be_packet(cfg, 1, 0, seq=1), vc=3)
        driver.run_until_drained()
        assert len(driver.delivered) == 2

    def test_asymmetric_networks(self):
        for shape in ((2, 8), (8, 2), (16, 1)):
            cfg = NetworkConfig(*shape, topology="torus")
            engine = CycleEngine(cfg)
            driver = PacketDriver(engine)
            driver.send(be_packet(cfg, 0, cfg.n_routers - 1), vc=2)
            driver.run_until_drained(max_cycles=400)
            assert len(driver.delivered) == 1
