"""The worklist scheduler's order-equivalence invariant.

:class:`WorklistScheduler` claims to emit the *exact* pick sequence of
the literal round-robin scan (:class:`RoundRobinScheduler`) from any
reachable link-memory state — the property that makes it a pure
constant-factor optimisation, with bit-identical simulations, identical
delta counts and identical :class:`DeltaMetrics`.  This module checks
that claim three ways:

1. a hypothesis property test driving both schedulers through random
   destabilisation patterns on a mask-level link-memory double;
2. lockstep simulation equivalence against the reference scheduler and
   the unoptimised evaluation path on a 4x4 torus and a heterogeneous
   (per-router queue depth) configuration;
3. the same lockstep with wire faults injected mid-run — transients and
   a stuck bit — which forces the non-inlined evaluation path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import NetworkConfig, RouterConfig
from repro.seqsim import SequentialNetwork
from repro.seqsim.scheduler import (
    RoundRobinScheduler,
    SCHEDULERS,
    WorklistScheduler,
    make_scheduler,
)
from repro.traffic import BernoulliBeTraffic, TrafficDriver, uniform_random


class MaskLinks:
    """Mask-level double of LinkMemory's scheduling interface.

    Exposes exactly what the schedulers consume — ``n_units``,
    ``unstable_mask`` and ``is_stable`` — with the same semantics the
    real link memory maintains (bit set <=> unit non-stable).
    """

    def __init__(self, n_units: int, mask: int = 0) -> None:
        self.n_units = n_units
        self.unstable_mask = mask

    def is_stable(self, unit: int) -> bool:
        return not (self.unstable_mask >> unit) & 1

    def destabilize(self, units) -> None:
        for unit in units:
            self.unstable_mask |= 1 << unit

    def settle(self, unit: int) -> None:
        self.unstable_mask &= ~(1 << unit)


@st.composite
def scheduler_scripts(draw):
    """(n_units, initial mask, per-step destabilisation sets)."""
    n = draw(st.integers(min_value=1, max_value=64))
    mask = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    steps = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=n - 1), max_size=4),
            max_size=40,
        )
    )
    return n, mask, steps


class TestOrderEquivalence:
    @given(scheduler_scripts())
    @settings(max_examples=200, deadline=None)
    def test_identical_pick_sequences(self, script):
        """Both schedulers pick the same unit at every step of any
        destabilise/settle interleaving (the delta-cycle loop's shape:
        each pick is followed by the picked unit settling and a write
        possibly destabilising others)."""
        n, mask, steps = script
        rr_links = MaskLinks(n, mask)
        wl_links = MaskLinks(n, mask)
        rr = RoundRobinScheduler(n)
        wl = WorklistScheduler(n)
        picks_rr, picks_wl = [], []
        for wake in steps:
            a = rr.next_unit(rr_links)
            b = wl.next_unit(wl_links)
            assert a == b
            assert rr.pointer == wl.pointer or a is None
            picks_rr.append(a)
            picks_wl.append(b)
            if a is not None:
                rr_links.settle(a)
                wl_links.settle(a)
            rr_links.destabilize(wake)
            wl_links.destabilize(wake)
        # Drain: with no further destabilisation both must converge
        # through the identical tail.
        while True:
            a = rr.next_unit(rr_links)
            b = wl.next_unit(wl_links)
            assert a == b
            if a is None:
                break
            rr_links.settle(a)
            wl_links.settle(b)

    def test_registry(self):
        assert set(SCHEDULERS) == {"roundrobin", "worklist"}
        assert isinstance(make_scheduler("worklist", 4), WorklistScheduler)
        assert isinstance(make_scheduler("roundrobin", 4), RoundRobinScheduler)
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lifo", 4)


def lockstep_nets(cfg, nets, load, seed, cycles, fault_plan=()):
    """Drive identical traffic through all nets, asserting equal
    snapshots and per-cycle delta counts every cycle.  ``fault_plan`` is
    ``(cycle, fn)`` pairs; ``fn(net)`` applies the same fault to each."""
    drivers = [
        TrafficDriver(
            net, be=BernoulliBeTraffic(cfg, load, uniform_random(cfg), seed=seed)
        )
        for net in nets
    ]
    plan = dict()
    for cycle, fn in fault_plan:
        plan.setdefault(cycle, []).append(fn)
    for t in range(cycles):
        for fn in plan.get(t, []):
            for net in nets:
                fn(net)
        for driver in drivers:
            driver.step()
        reference = nets[0].snapshot()
        ref_deltas = nets[0].metrics.per_cycle[-1]
        for net in nets[1:]:
            assert net.snapshot() == reference, f"state divergence at cycle {t}"
            assert net.metrics.per_cycle[-1] == ref_deltas, (
                f"delta-count divergence at cycle {t}"
            )
    assert len({net.metrics.total_deltas for net in nets}) == 1


class TestSimulationEquivalence:
    def test_4x4_torus_vs_reference(self):
        """Worklist+optimised (plain and packed) against the reference
        round-robin/unoptimised loop: bit-identical states and delta
        counts on every cycle."""
        cfg = NetworkConfig(4, 4, topology="torus")
        nets = [
            SequentialNetwork(cfg, optimize=False, scheduler="roundrobin"),
            SequentialNetwork(cfg, optimize=True, scheduler="roundrobin"),
            SequentialNetwork(cfg, optimize=True, scheduler="worklist"),
            SequentialNetwork(cfg, packed=True, scheduler="worklist"),
        ]
        lockstep_nets(cfg, nets, load=0.12, seed=0x5C4E, cycles=120)

    def test_heterogeneous_config(self):
        """Per-router queue-depth overrides (section 7.1) through the
        same scheduler/optimisation matrix."""
        cfg = NetworkConfig(
            3,
            3,
            topology="mesh",
            router_overrides=(
                (2, RouterConfig(queue_depth=8)),
                (5, RouterConfig(queue_depth=2)),
            ),
        )
        nets = [
            SequentialNetwork(cfg, optimize=False, scheduler="roundrobin"),
            SequentialNetwork(cfg, optimize=True, scheduler="worklist"),
            SequentialNetwork(cfg, packed=True, scheduler="worklist"),
        ]
        lockstep_nets(cfg, nets, load=0.15, seed=0x4E7, cycles=100)

    def test_equivalence_under_wire_faults(self):
        """Transient and stuck wire faults applied identically to every
        net: the worklist/memoised path must stay bit-identical to the
        reference even when faults disable the fault-free fast paths."""
        cfg = NetworkConfig(4, 4, topology="torus")
        nets = [
            SequentialNetwork(cfg, optimize=False, scheduler="roundrobin"),
            SequentialNetwork(cfg, optimize=True, scheduler="worklist"),
        ]

        def transient(net):
            net.links.inject_value_fault(7, 0b1011)

        def transient2(net):
            net.links.inject_value_fault(23, 0x3F)

        def stuck(net):
            net.links.set_stuck(11, bit=2, value=1)

        lockstep_nets(
            cfg,
            nets,
            load=0.12,
            seed=0xFA17,
            cycles=90,
            fault_plan=[(25, transient), (40, stuck), (60, transient2)],
        )
        # The stuck wire stays installed: the whole tail ran with the
        # inline-write fast path disabled on both nets.
        assert not nets[0].links.fault_free
