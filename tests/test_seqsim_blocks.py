"""Tests of the generic block framework: the Fig. 3 and Fig. 5 systems."""

import itertools

import pytest

from repro.seqsim.blocks import (
    CombBlock,
    ConvergenceError,
    DynamicBlockSimulator,
    RegisteredBlock,
    StaticBlockSimulator,
)


def fig3_system(order=None):
    """The section 4.1 example: three circuits F1..F3 in a ring, fully
    registered boundaries (Fig. 2a / Fig. 3)."""

    def f1(inputs):
        return {"r": (inputs["x"] + 1) & 0xFF}

    def f2(inputs):
        return {"r": (inputs["x"] * 2) & 0xFF}

    def f3(inputs):
        return {"r": (inputs["x"] ^ 0x5A) & 0xFF}

    blocks = [
        RegisteredBlock("F1", (("r", 8),), f1, reset=(("r", 1),)),
        RegisteredBlock("F2", (("r", 8),), f2),
        RegisteredBlock("F3", (("r", 8),), f3),
    ]
    sim = StaticBlockSimulator(blocks, order=order)
    sim.connect("F3", "r", "F1", "x")
    sim.connect("F1", "r", "F2", "x")
    sim.connect("F2", "r", "F3", "x")
    return sim


def parallel_fig3(cycles):
    """Direct parallel simulation of the same ring for cross-checking."""
    r1, r2, r3 = 1, 0, 0
    for _ in range(cycles):
        r1, r2, r3 = (r3 + 1) & 0xFF, (r1 * 2) & 0xFF, (r2 ^ 0x5A) & 0xFF
    return r1, r2, r3


class TestStaticSchedule:
    def test_matches_parallel_execution(self):
        sim = fig3_system()
        sim.run(10)
        assert (
            sim.register_value("F1", "r"),
            sim.register_value("F2", "r"),
            sim.register_value("F3", "r"),
        ) == parallel_fig3(10)

    def test_any_evaluation_order_is_equivalent(self):
        """Paper section 4.1: 'the order in which the circuitry is
        evaluated [...] can be arbitrary'."""
        reference = fig3_system()
        reference.run(7)
        for order in itertools.permutations(range(3)):
            sim = fig3_system(order=list(order))
            sim.run(7)
            assert sim.snapshot() == reference.snapshot(), order

    def test_delta_count_is_block_count(self):
        sim = fig3_system()
        sim.run(5)
        assert sim.metrics.per_cycle == [3] * 5

    def test_time_multiplexing_factor(self):
        """Simulating sequentially costs a factor n in time (section 4.1:
        'increases the required time to simulate the system by a factor
        three') — visible as 3 evaluations per system cycle."""
        sim = fig3_system()
        sim.run(1)
        assert sim.metrics.total_deltas == 3 * sim.metrics.system_cycles

    def test_register_packing_bounds(self):
        block = RegisteredBlock("B", (("a", 4), ("b", 2)), lambda i: i)
        assert block.word_width == 6
        assert block.pack({"a": 0xF, "b": 1}) == 0x1F
        assert block.unpack(0x1F) == {"a": 0xF, "b": 1}
        with pytest.raises(ValueError):
            block.pack({"a": 16, "b": 0})

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticBlockSimulator([])
        blocks = [
            RegisteredBlock("A", (("r", 4),), lambda i: {"r": 0}),
            RegisteredBlock("A", (("r", 4),), lambda i: {"r": 0}),
        ]
        with pytest.raises(ValueError):
            StaticBlockSimulator(blocks)
        sim = fig3_system()
        with pytest.raises(KeyError):
            sim.connect("F1", "bogus", "F2", "x")


def inc_chain(n, head_state=5):
    """A Mealy chain: head outputs its register; every later block outputs
    input+1 combinationally and latches its input.  This is the Fig. 4
    situation: block i's output is a combinatorial function of block
    i-1's output."""

    def head_fn(state, inputs):
        return {"out": state}, state

    def chain_fn(state, inputs):
        value = (inputs["in"] + 1) & 0xFF
        return {"out": value}, inputs["in"]

    blocks = [CombBlock("b0", 8, (), (("out", 8),), head_fn, reset=head_state)]
    for i in range(1, n):
        blocks.append(
            CombBlock(f"b{i}", 8, (("in", 8),), (("out", 8),), chain_fn)
        )
    sim = DynamicBlockSimulator(blocks)
    for i in range(1, n):
        sim.connect(f"b{i-1}", "out", f"b{i}", "in")
    return sim


class TestDynamicSchedule:
    def test_chain_settles_to_fixed_point(self):
        sim = inc_chain(5)
        sim.step()
        # After one cycle the wire values are head, head+1, ... head+4.
        for i in range(1, 5):
            assert sim.wire_value(f"b{i-1}", "out", f"b{i}", "in") == 5 + i - 1

    def test_every_block_evaluated_at_least_once(self):
        sim = inc_chain(4)
        sim.run(3)
        assert all(d >= 4 for d in sim.metrics.per_cycle)

    def test_forward_order_needs_extra_deltas_once(self):
        """In scan order b0,b1,..., each write lands before its reader
        evaluates, so after the first (settling) cycle the chain costs
        exactly n deltas while values are stable."""
        sim = inc_chain(6)
        sim.run(3)
        # The head register never changes, so from cycle 2 on nothing
        # changes and each cycle is the minimum 6 deltas.
        assert sim.metrics.per_cycle[-1] == 6

    def test_dynamic_matches_direct_computation(self):
        """State after k cycles equals a direct parallel computation."""
        n, k = 5, 4
        sim = inc_chain(n)
        sim.run(k)
        # Parallel semantics: out_i(t) = out_{i-1}(t)+1 (comb), state latches
        # the input, head constant.
        outs = [5] + [0] * (n - 1)
        states = [5] + [0] * (n - 1)
        for _ in range(k):
            new_outs = [states[0]] + [0] * (n - 1)
            for i in range(1, n):
                new_outs[i] = (new_outs[i - 1] + 1) & 0xFF
            new_states = [states[0]] + [new_outs[i - 1] for i in range(1, n)]
            outs, states = new_outs, new_states
        for i in range(n):
            assert sim.state_of(f"b{i}") == states[i]

    def test_trace_records_schedule(self):
        """The trace reproduces a Fig. 5-style schedule table."""
        sim = inc_chain(3)
        sim.step()
        cycle0 = [(d, b) for c, d, b in sim.trace if c == 0]
        blocks_seen = [b for _, b in cycle0]
        assert set(blocks_seen) == {0, 1, 2}
        assert blocks_seen[:3] == [0, 1, 2]  # round-robin scan order

    def test_combinational_loop_detected(self):
        def inverter(state, inputs):
            return {"out": inputs["in"] ^ 1}, state

        blocks = [
            CombBlock("i0", 1, (("in", 1),), (("out", 1),), inverter),
        ]
        sim = DynamicBlockSimulator(blocks)
        sim.connect("i0", "out", "i0", "in")
        # An inverter feeding itself is a ring oscillator: no fixed point.
        with pytest.raises(ConvergenceError):
            sim.run(2)

    def test_cross_coupled_inverters_form_a_latch(self):
        """Two cross-coupled inverters are bistable, not oscillating: the
        dynamic schedule finds one of the two stable fixed points."""

        def inverter(state, inputs):
            return {"out": inputs["in"] ^ 1}, state

        blocks = [
            CombBlock("i0", 1, (("in", 1),), (("out", 1),), inverter),
            CombBlock("i1", 1, (("in", 1),), (("out", 1),), inverter),
        ]
        sim = DynamicBlockSimulator(blocks)
        sim.connect("i0", "out", "i1", "in")
        sim.connect("i1", "out", "i0", "in")
        sim.run(2)
        q = sim.wire_value("i0", "out", "i1", "in")
        nq = sim.wire_value("i1", "out", "i0", "in")
        assert (q, nq) in ((0, 1), (1, 0))

    def test_fanout_wire(self):
        def src_fn(state, inputs):
            return {"out": (state + 1) & 0xF}, (state + 1) & 0xF

        def sink_fn(state, inputs):
            return {}, inputs["in"]

        blocks = [
            CombBlock("src", 4, (), (("out", 4),), src_fn),
            CombBlock("s1", 4, (("in", 4),), (), sink_fn),
            CombBlock("s2", 4, (("in", 4),), (), sink_fn),
        ]
        sim = DynamicBlockSimulator(blocks)
        sim.connect("src", "out", "s1", "in")
        sim.connect("src", "out", "s2", "in")
        sim.run(2)
        assert sim.state_of("s1") == sim.state_of("s2") == 2

    def test_port_width_mismatch(self):
        blocks = [
            CombBlock("a", 4, (), (("out", 4),), lambda s, i: ({"out": 0}, 0)),
            CombBlock("b", 4, (("in", 2),), (), lambda s, i: ({}, 0)),
        ]
        sim = DynamicBlockSimulator(blocks)
        with pytest.raises(ValueError):
            sim.connect("a", "out", "b", "in")
