"""Unit tests for the sequential simulator's building blocks:
state memory, link memory (HBR protocol), scheduler, metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seqsim import DeltaMetrics, LinkMemory, PackedStateMemory, RoundRobinScheduler
from repro.seqsim.linkmem import WireSpec


class TestPackedStateMemory:
    def test_read_your_own_bank(self):
        mem = PackedStateMemory(depth=4, width=16)
        mem.initialize(2, 0xABCD)
        assert mem.read(2) == 0xABCD

    def test_write_goes_to_other_bank(self):
        mem = PackedStateMemory(depth=4, width=16)
        mem.initialize(0, 0x1111)
        mem.write(0, 0x2222)
        assert mem.read(0) == 0x1111  # still the old value
        mem.swap()
        assert mem.read(0) == 0x2222

    def test_swap_alternates_banks(self):
        mem = PackedStateMemory(depth=2, width=8)
        assert mem.current_bank == 0
        mem.swap()
        assert mem.current_bank == 1
        mem.swap()
        assert mem.current_bank == 0

    def test_ping_pong_two_cycles(self):
        """Even/odd system cycles use opposite banks (paper section 4.1)."""
        mem = PackedStateMemory(depth=1, width=8)
        mem.initialize(0, 1)
        for expected in (1, 2, 3, 4):
            assert mem.read(0) == expected
            mem.write(0, expected + 1)
            mem.swap()

    def test_write_current_for_software_loads(self):
        mem = PackedStateMemory(depth=2, width=8)
        mem.write_current(1, 0x55)
        assert mem.read(1) == 0x55

    def test_bounds_and_width_checks(self):
        mem = PackedStateMemory(depth=2, width=8)
        with pytest.raises(IndexError):
            mem.read(2)
        with pytest.raises(ValueError):
            mem.write(0, 0x100)
        with pytest.raises(ValueError):
            PackedStateMemory(depth=0, width=8)

    def test_total_bits(self):
        assert PackedStateMemory(depth=256, width=2112).total_bits == 2 * 256 * 2112

    def test_counters(self):
        mem = PackedStateMemory(depth=2, width=8)
        mem.read(0)
        mem.write(0, 1)
        mem.swap()
        assert (mem.reads, mem.writes, mem.swaps) == (1, 1, 1)


def two_unit_links():
    """unit0 -> w01 -> unit1, unit1 -> w10 -> unit0."""
    return LinkMemory(
        2,
        [
            WireSpec("w01", writer=0, reader=1, width=8),
            WireSpec("w10", writer=1, reader=0, width=8),
        ],
    )


class TestLinkMemoryHbr:
    def test_begin_cycle_clears_everything(self):
        links = two_unit_links()
        links.begin_cycle()
        assert links.hbr == [0, 0]
        assert not links.all_stable()

    def test_read_sets_hbr(self):
        links = two_unit_links()
        links.begin_cycle()
        links.read_inputs(1)  # unit1 reads w01
        assert links.hbr[links.wire_id("w01")] == 1

    def test_unchanged_write_preserves_hbr(self):
        links = two_unit_links()
        links.begin_cycle()
        links.read_inputs(1)
        links.mark_stable(1)
        links.write_outputs(0, [0])  # same value as stored
        assert links.hbr[links.wire_id("w01")] == 1
        assert links.is_stable(1)

    def test_changed_write_invalidates_reader(self):
        """The Fig. 5 delta (1,2) scenario: a link already read is
        rewritten with a different value -> HBR 1->0, reader re-evaluated."""
        links = two_unit_links()
        links.begin_cycle()
        links.read_inputs(1)
        links.mark_stable(1)
        invalidated = links.write_outputs(0, [7])
        assert invalidated == [1]
        assert links.hbr[links.wire_id("w01")] == 0
        assert not links.is_stable(1)

    def test_changed_write_before_read_costs_nothing(self):
        """Fig. 5: updates of yet-unread links 'do not result in extra
        evaluation cycles as the HBR-bit was still zero'."""
        links = two_unit_links()
        links.begin_cycle()
        invalidated = links.write_outputs(0, [7])
        assert invalidated == []

    def test_values_persist_across_cycles(self):
        links = two_unit_links()
        links.begin_cycle()
        links.write_outputs(0, [9])
        links.begin_cycle()
        assert links.read_inputs(1) == [9]

    def test_unit_hbr_group(self):
        links = two_unit_links()
        links.begin_cycle()
        assert links.unit_hbr_group(0) == (0,)
        links.read_inputs(0)
        assert links.unit_hbr_group(0) == (1,)

    def test_total_bits_includes_status(self):
        links = two_unit_links()
        assert links.total_bits == (8 + 1) * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkMemory(1, [WireSpec("w", writer=0, reader=5, width=4)])
        with pytest.raises(ValueError):
            LinkMemory(
                2,
                [
                    WireSpec("w", writer=0, reader=1, width=4),
                    WireSpec("w", writer=1, reader=0, width=4),
                ],
            )
        links = two_unit_links()
        with pytest.raises(ValueError):
            links.write_outputs(0, [1, 2])
        with pytest.raises(ValueError):
            links.write_outputs(0, [0x100])

    def test_value_of_by_name(self):
        links = two_unit_links()
        links.write_outputs(1, [3])
        assert links.value_of("w10") == 3


class TestScheduler:
    def test_scans_in_order(self):
        links = LinkMemory(3, [])
        sched = RoundRobinScheduler(3)
        links.begin_cycle()
        order = []
        while (u := sched.next_unit(links)) is not None:
            order.append(u)
            links.mark_stable(u)
        assert order == [0, 1, 2]

    def test_revisits_destabilised_unit(self):
        links = LinkMemory(
            2, [WireSpec("w", writer=1, reader=0, width=4)]
        )
        sched = RoundRobinScheduler(2)
        links.begin_cycle()
        first = sched.next_unit(links)
        links.read_inputs(first)
        links.mark_stable(first)
        second = sched.next_unit(links)
        links.write_outputs(second, [5])  # invalidates unit 0
        links.mark_stable(second)
        assert not links.is_stable(0)
        assert sched.next_unit(links) == 0
        links.read_inputs(0)
        links.mark_stable(0)
        assert sched.next_unit(links) is None

    def test_pointer_persists_across_cycles(self):
        links = LinkMemory(3, [])
        sched = RoundRobinScheduler(3)
        links.begin_cycle()
        sched.next_unit(links)
        links.mark_stable(0)
        # New cycle: scan continues from unit 1, not unit 0.
        links.begin_cycle()
        assert sched.next_unit(links) == 1

    def test_needs_units(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(0)


class TestDeltaMetrics:
    def test_floor_enforced(self):
        metrics = DeltaMetrics(n_units=4)
        with pytest.raises(ValueError):
            metrics.record_cycle(3)

    def test_extra_accounting(self):
        metrics = DeltaMetrics(n_units=4)
        metrics.record_cycle(4)
        metrics.record_cycle(6)
        assert metrics.total_deltas == 10
        assert metrics.min_deltas == 8
        assert metrics.extra_deltas == 2
        assert metrics.extra_fraction() == pytest.approx(0.25)
        assert metrics.mean_deltas_per_cycle() == 5.0
        summary = metrics.summary()
        assert summary["max_deltas_per_cycle"] == 6

    def test_empty_metrics(self):
        metrics = DeltaMetrics(n_units=4)
        assert metrics.extra_fraction() == 0.0
        assert metrics.mean_deltas_per_cycle() == 0.0

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
    def test_totals_property(self, extras):
        metrics = DeltaMetrics(n_units=7)
        for e in extras:
            metrics.record_cycle(7 + e)
        assert metrics.total_deltas == metrics.min_deltas + metrics.extra_deltas
        assert metrics.extra_deltas == sum(extras)
