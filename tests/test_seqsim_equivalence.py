"""Bit-equivalence of the sequential simulator with the golden network.

This is the reproduction's analogue of the paper's central correctness
claim: the FPGA sequential simulator produces exactly the results of the
parallel design, "without compromising the cycle and bit level accuracy".
We drive the golden model and the sequential simulator(s) in lockstep on
identical traffic and compare every architectural bit every cycle.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Network, NetworkConfig, RouterConfig
from repro.seqsim import SequentialNetwork, StaticSequentialNetwork

from tests.helpers import PacketDriver, be_packet, gt_packet


def lockstep(cfg, engines, schedule, cycles):
    """Run identical traffic through several engines, checking snapshots
    every cycle. ``schedule`` = list of (cycle, src, vc, packet)."""
    drivers = [PacketDriver(e) for e in engines]
    by_cycle = {}
    for cycle, vc, packet in schedule:
        by_cycle.setdefault(cycle, []).append((vc, packet))
    for t in range(cycles):
        for vc, packet in by_cycle.get(t, []):
            for driver in drivers:
                driver.send(packet, vc)
        for driver in drivers:
            driver.pump()
        for engine in engines:
            engine.step()
        reference = engines[0].snapshot()
        for engine in engines[1:]:
            assert engine.snapshot() == reference, (
                f"divergence at cycle {t} in {type(engine).__name__}"
            )
    for driver in drivers:
        driver.harvest()
    return drivers


def random_schedule(cfg, rng, n_packets, horizon):
    schedule = []
    for seq in range(n_packets):
        src = rng.randrange(cfg.n_routers)
        dest = rng.randrange(cfg.n_routers)
        nbytes = rng.choice([2, 10, 24])
        packet = be_packet(cfg, src, dest, nbytes=nbytes, seq=seq)
        schedule.append((rng.randrange(horizon), rng.choice([2, 3]), packet))
    return schedule


class TestDynamicEquivalence:
    def test_idle_network_equivalent(self):
        cfg = NetworkConfig(3, 3)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        for _ in range(5):
            golden.step()
            seq.step()
            assert seq.snapshot() == golden.snapshot()

    def test_single_packet_equivalent(self):
        cfg = NetworkConfig(4, 4)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        packet = be_packet(cfg, 0, cfg.index(3, 2))
        lockstep(cfg, [golden, seq], [(0, 2, packet)], cycles=40)
        assert [r.__dict__ for r in seq.ejections] == [
            r.__dict__ for r in golden.ejections
        ]
        assert [r.__dict__ for r in seq.injections] == [
            r.__dict__ for r in golden.injections
        ]

    def test_random_traffic_equivalent(self):
        cfg = NetworkConfig(4, 3, topology="torus")
        rng = random.Random(1234)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        schedule = random_schedule(cfg, rng, n_packets=25, horizon=60)
        lockstep(cfg, [golden, seq], schedule, cycles=150)
        assert len(seq.ejections) == len(golden.ejections) > 0

    def test_mesh_random_traffic_equivalent(self):
        cfg = NetworkConfig(3, 4, topology="mesh")
        rng = random.Random(99)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        schedule = random_schedule(cfg, rng, n_packets=20, horizon=50)
        lockstep(cfg, [golden, seq], schedule, cycles=120)

    def test_gt_traffic_equivalent(self):
        cfg = NetworkConfig(4, 4)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        schedule = [
            (0, 0, gt_packet(cfg, 0, cfg.index(2, 0), nbytes=32)),
            (0, 2, be_packet(cfg, 0, cfg.index(2, 0), nbytes=24)),
            (5, 1, gt_packet(cfg, cfg.index(1, 0), cfg.index(3, 0), nbytes=32)),
        ]
        lockstep(cfg, [golden, seq], schedule, cycles=120)

    def test_queue_depth_2_equivalent(self):
        cfg = NetworkConfig(3, 3, router=RouterConfig(queue_depth=2))
        rng = random.Random(7)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        schedule = random_schedule(cfg, rng, n_packets=15, horizon=40)
        lockstep(cfg, [golden, seq], schedule, cycles=120)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31))
    def test_equivalence_property(self, seed):
        cfg = NetworkConfig(3, 3)
        rng = random.Random(seed)
        golden, seq = Network(cfg), SequentialNetwork(cfg)
        schedule = random_schedule(cfg, rng, n_packets=10, horizon=30)
        lockstep(cfg, [golden, seq], schedule, cycles=60)


class TestPackedEquivalence:
    """packed=True routes every unit evaluation through the 1912-bit
    memory words — the bit-accuracy claim exercised end to end."""

    def test_packed_random_traffic(self):
        cfg = NetworkConfig(3, 3)
        rng = random.Random(5150)
        golden = Network(cfg)
        packed = SequentialNetwork(cfg, packed=True)
        schedule = random_schedule(cfg, rng, n_packets=10, horizon=30)
        lockstep(cfg, [golden, packed], schedule, cycles=80)
        assert packed.statemem.swaps == 80
        assert packed.statemem.reads > 0

    def test_packed_bank_alternates(self):
        cfg = NetworkConfig(2, 2)
        packed = SequentialNetwork(cfg, packed=True)
        banks = []
        for _ in range(4):
            banks.append(packed.statemem.current_bank)
            packed.step()
        assert banks == [0, 1, 0, 1]


class TestStaticScheduleEquivalence:
    def test_static_matches_golden(self):
        cfg = NetworkConfig(3, 3)
        rng = random.Random(31337)
        golden, static = Network(cfg), StaticSequentialNetwork(cfg)
        schedule = random_schedule(cfg, rng, n_packets=15, horizon=40)
        lockstep(cfg, [golden, static], schedule, cycles=100)

    def test_static_delta_count_is_3n(self):
        cfg = NetworkConfig(3, 3)
        static = StaticSequentialNetwork(cfg)
        static.run(10)
        assert static.metrics.per_cycle == [27] * 10


class TestDeltaAccounting:
    def test_idle_cycle_minimum_deltas(self):
        """With no traffic and settled wires, every unit is evaluated
        exactly once: the section 6 minimum."""
        cfg = NetworkConfig(4, 4)
        seq = SequentialNetwork(cfg)
        seq.run(5)
        # Cycle 0 may include re-evaluations while the reset wire values
        # settle; afterwards the count must sit at the floor.
        assert seq.metrics.per_cycle[1:] == [16] * 4

    def test_eastward_traffic_needs_no_reevaluation(self):
        """Scheduler luck: a packet moving in ascending router-index
        direction has all its forward wires written before their readers
        are evaluated, so the HBR bits never force a re-evaluation."""
        cfg = NetworkConfig(4, 4, topology="mesh")
        seq = SequentialNetwork(cfg)
        driver = PacketDriver(seq)
        driver.send(be_packet(cfg, cfg.index(0, 0), cfg.index(3, 0), nbytes=24), vc=2)
        driver.run_until_drained()
        assert seq.metrics.extra_deltas == 0

    def test_westward_traffic_causes_extra_deltas(self):
        """A packet moving against the scheduler's scan order is read
        stale first, so its readers must be re-evaluated (paper section 6:
        extra delta cycles grow with offered load)."""
        cfg = NetworkConfig(4, 4, topology="mesh")
        seq = SequentialNetwork(cfg)
        driver = PacketDriver(seq)
        driver.send(be_packet(cfg, cfg.index(3, 0), cfg.index(0, 0), nbytes=24), vc=2)
        driver.run_until_drained()
        assert seq.metrics.extra_deltas > 0
        assert seq.metrics.extra_fraction() < 2.0  # bounded re-evaluation

    def test_convergence_within_three_sweeps(self):
        """The NoC's wire dependencies are acyclic (state->room->fwd), so
        no cycle may need more than ~3 evaluations per unit."""
        cfg = NetworkConfig(3, 3)
        seq = SequentialNetwork(cfg)
        driver = PacketDriver(seq)
        for seq_no in range(8):
            driver.send(be_packet(cfg, seq_no % 9, (seq_no * 2 + 3) % 9, seq=seq_no), vc=2)
        driver.run_until_drained()
        assert max(seq.metrics.per_cycle) <= 3 * cfg.n_routers

    def test_deliveries_match_golden_counts(self):
        cfg = NetworkConfig(4, 4)
        seq = SequentialNetwork(cfg)
        driver = PacketDriver(seq)
        for s in range(6):
            driver.send(be_packet(cfg, s, (s + 5) % 16, seq=s), vc=2)
        driver.run_until_drained()
        assert len(driver.delivered) == 6
