"""Hypothesis stateful tests: the FIFO structures against pure models.

The FlitQueue ring buffer and the platform CyclicBuffer are the two
structures every flit flows through; these rule-based machines drive
them with arbitrary operation sequences against a plain-list model.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.noc.router import FlitQueue, ProtocolError
from repro.platform.cyclic_buffer import CyclicBuffer


class FlitQueueMachine(RuleBasedStateMachine):
    DEPTH = 4

    def __init__(self):
        super().__init__()
        self.queue = FlitQueue(self.DEPTH)
        self.model = []

    @rule(word=st.integers(0, (1 << 18) - 1))
    def push(self, word):
        if len(self.model) == self.DEPTH:
            try:
                self.queue.push(word)
                raise AssertionError("push on full queue must raise")
            except ProtocolError:
                pass
            # non-strict mode drops silently
            before = self.queue.contents()
            self.queue.push(word, strict=False)
            assert self.queue.contents() == before
        else:
            self.queue.push(word)
            self.model.append(word)

    @precondition(lambda self: self.model)
    @rule()
    def pop(self):
        assert self.queue.pop() == self.model.pop(0)

    @precondition(lambda self: self.model)
    @rule()
    def head(self):
        assert self.queue.head() == self.model[0]

    @rule()
    def copy_is_independent(self):
        clone = self.queue.copy()
        assert clone == self.queue
        if self.model:
            clone.pop()
            assert clone != self.queue or not self.model

    @invariant()
    def count_matches(self):
        assert self.queue.count == len(self.model)
        assert self.queue.contents() == self.model


class CyclicBufferMachine(RuleBasedStateMachine):
    CAPACITY = 5

    def __init__(self):
        super().__init__()
        self.buffer = CyclicBuffer(self.CAPACITY)
        self.model = []
        self.clock = 0

    @rule(payload=st.integers())
    def write(self, payload):
        self.clock += 1
        if len(self.model) == self.CAPACITY:
            assert not self.buffer.try_write(self.clock, payload)
        else:
            self.buffer.write(self.clock, payload)
            self.model.append((self.clock, payload))

    @precondition(lambda self: self.model)
    @rule()
    def read(self):
        entry = self.buffer.read()
        want = self.model.pop(0)
        assert (entry.timestamp, entry.payload) == want

    @rule()
    def try_read_consistent(self):
        if not self.model:
            assert self.buffer.try_read() is None
        else:
            entry = self.buffer.try_read()
            want = self.model.pop(0)
            assert (entry.timestamp, entry.payload) == want

    @rule()
    def discard(self):
        assert self.buffer.discard_all() == len(self.model)
        self.model.clear()

    @invariant()
    def counts_match(self):
        assert self.buffer.count == len(self.model)
        assert self.buffer.is_empty == (not self.model)
        assert self.buffer.is_full == (len(self.model) == self.CAPACITY)


TestFlitQueueStateful = FlitQueueMachine.TestCase
TestCyclicBufferStateful = CyclicBufferMachine.TestCase
