"""Tests for the statistics package: latency tracking, throughput,
histograms, and the GT guarantee bound."""

import pytest

from repro.engines import CycleEngine
from repro.noc import NetworkConfig, RouterConfig
from repro.noc.packet import PacketClass
from repro.stats import (
    Histogram,
    PacketLatencyTracker,
    ThroughputStats,
    gt_guarantee_bound,
)
from repro.stats.throughput import access_delay_stats, per_class_flit_counts
from repro.traffic import BernoulliBeTraffic, GtStreamTraffic, TrafficDriver, uniform_random
from repro.traffic.generators import reserve_shift_streams


def run_session(net, be_load=0.05, gt_period=None, cycles=300, seed=3):
    engine = CycleEngine(net)
    gt = None
    if gt_period:
        table = reserve_shift_streams(net, dx=1)
        gt = GtStreamTraffic(net, table.streams, period=gt_period, payload_bytes=32)
    be = BernoulliBeTraffic(net, be_load, uniform_random(net), seed=seed)
    driver = TrafficDriver(engine, be=be, gt=gt)
    tracker = PacketLatencyTracker(net)
    driver.attach_tracker(tracker)
    driver.run(cycles)
    driver.be = None
    driver.gt = None
    driver.drain()
    tracker.collect(engine)
    return engine, driver, tracker


class TestLatencyTracker:
    def test_every_delivered_packet_sampled(self):
        net = NetworkConfig(3, 3)
        engine, driver, tracker = run_session(net)
        assert tracker.delivered() == len(driver.submits)

    def test_sample_fields_consistent(self):
        net = NetworkConfig(3, 3)
        _engine, _driver, tracker = run_session(net)
        for sample in tracker.samples:
            assert sample.total_latency > 0
            assert sample.network_latency is not None
            assert sample.network_latency <= sample.total_latency
            assert sample.head_eject_cycle <= sample.tail_eject_cycle
            assert 0 <= sample.hops <= 4

    def test_latency_lower_bound(self):
        """total >= 2*(hops+1) + (flits-1): the idle-network pipeline."""
        net = NetworkConfig(3, 3)
        _engine, _driver, tracker = run_session(net, be_load=0.01, cycles=500)
        for sample in tracker.samples:
            assert sample.total_latency >= 2 * (sample.hops + 1) + 6

    def test_class_separation(self):
        net = NetworkConfig(3, 3)
        _engine, _driver, tracker = run_session(net, gt_period=120)
        gt = tracker.stats(PacketClass.GT)
        be = tracker.stats(PacketClass.BE)
        assert gt is not None and be is not None
        assert gt.count + be.count == tracker.delivered()
        # GT packets are longer (18 flits vs 7): higher latency.
        assert gt.mean > be.mean

    def test_stats_shape(self):
        net = NetworkConfig(3, 3)
        _engine, _driver, tracker = run_session(net)
        stats = tracker.stats()
        assert stats.minimum <= stats.p50 <= stats.p99 <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_empty_stats_is_none(self):
        net = NetworkConfig(3, 3)
        tracker = PacketLatencyTracker(net)
        assert tracker.stats() is None


class TestThroughput:
    def test_conservation(self):
        net = NetworkConfig(3, 3)
        engine, driver, _tracker = run_session(net)
        stats = ThroughputStats.from_engine(engine)
        assert stats.flits_injected == stats.flits_ejected
        assert stats.in_flight == 0
        assert 0 < stats.accepted_load < 0.2

    def test_class_counts(self):
        net = NetworkConfig(3, 3)
        engine, _driver, _tracker = run_session(net, gt_period=120)
        counts = per_class_flit_counts(engine)
        assert counts["GT"] > 0 and counts["BE"] > 0

    def test_access_delay_stats(self):
        net = NetworkConfig(3, 3)
        engine, _driver, _tracker = run_session(net)
        stats = access_delay_stats(engine)
        assert stats is not None and stats["mean"] >= 0

    def test_empty_engine(self):
        net = NetworkConfig(2, 2)
        engine = CycleEngine(net)
        assert ThroughputStats.from_engine(engine).accepted_load == 0.0
        assert access_delay_stats(engine) is None


class TestGuaranteeBound:
    def test_paper_scale_value(self):
        """256-byte GT packet, 4 VCs: the bound lands in the ~550-cycle
        region of Figure 1's guarantee line."""
        cfg = RouterConfig()
        bound = gt_guarantee_bound(cfg, payload_bytes=256, hops=3)
        assert 500 <= bound <= 600

    def test_monotonic_in_hops_and_size(self):
        cfg = RouterConfig()
        assert gt_guarantee_bound(cfg, 256, 4) > gt_guarantee_bound(cfg, 256, 2)
        assert gt_guarantee_bound(cfg, 256, 2) > gt_guarantee_bound(cfg, 64, 2)

    def test_gt_latency_below_guarantee_light_load(self):
        """The Fig. 1 property: measured GT max stays below the bound."""
        net = NetworkConfig(3, 3)
        _engine, _driver, tracker = run_session(net, be_load=0.05, gt_period=100, cycles=600)
        gt_stats = tracker.stats(PacketClass.GT)
        assert gt_stats is not None
        worst_bound = max(
            gt_guarantee_bound(net.router, 32, s.hops)
            for s in tracker.samples
            if s.pclass is PacketClass.GT
        )
        assert gt_stats.maximum <= worst_bound


class TestHistogram:
    def test_binning(self):
        h = Histogram(bin_width=10)
        h.extend([0, 5, 9, 10, 25])
        assert h.bins() == ((0, 10, 3), (10, 20, 1), (20, 30, 1))
        assert h.total == 5

    def test_percentile(self):
        h = Histogram(bin_width=1)
        h.extend(range(100))
        assert h.percentile(50) == pytest.approx(50, abs=2)

    def test_render(self):
        h = Histogram(bin_width=10)
        h.extend([1, 2, 3, 15])
        text = h.render()
        assert "#" in text and "[" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(0)
        h = Histogram()
        with pytest.raises(ValueError):
            h.add(-1)
        with pytest.raises(ValueError):
            h.percentile(50)
