"""Tests for the systolic matrix-multiply array (paper section 7.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seqsim.systolic import SystolicMatmul


def reference(a, b, acc_bits=24):
    return (np.array(a, dtype=np.int64) @ np.array(b, dtype=np.int64)) % (1 << acc_bits)


class TestSystolicMatmul:
    def test_identity(self):
        n = 3
        eye = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        m = [[i * n + j + 1 for j in range(n)] for i in range(n)]
        array = SystolicMatmul(n)
        array.load(eye, m)
        assert array.run() == m

    def test_known_product(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        array = SystolicMatmul(2)
        array.load(a, b)
        assert np.array_equal(np.array(array.run()), reference(a, b))

    def test_4x4_random(self):
        rng = np.random.default_rng(42)
        a = rng.integers(0, 256, size=(4, 4)).tolist()
        b = rng.integers(0, 256, size=(4, 4)).tolist()
        array = SystolicMatmul(4)
        array.load(a, b)
        assert np.array_equal(np.array(array.run()), reference(a, b))

    def test_accumulator_wraps(self):
        """Fixed-width hardware semantics: the accumulator is modular."""
        n = 2
        a = [[255] * n] * n
        b = [[255] * n] * n
        array = SystolicMatmul(n, acc_bits=16)
        array.load(a, b)
        expected = (np.array(a) @ np.array(b)) % (1 << 16)
        assert np.array_equal(np.array(array.run()), expected)

    def test_static_schedule_cost(self):
        """Sequential simulation cost: (cells + feeders) deltas/cycle."""
        array = SystolicMatmul(3)
        array.load([[0] * 3] * 3, [[0] * 3] * 3)
        array.run()
        units = 3 * 3 + 3 + 3
        assert array.metrics.per_cycle == [units] * array.compute_cycles

    def test_extra_cycles_do_not_corrupt(self):
        """Once the valid tail passes, accumulators freeze."""
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        array = SystolicMatmul(2)
        array.load(a, b)
        array.run()
        first = array.result()
        array.sim.run(10)
        assert array.result() == first

    def test_shape_validation(self):
        array = SystolicMatmul(2)
        with pytest.raises(ValueError):
            array.load([[1, 2]], [[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            SystolicMatmul(0)

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_matches_numpy_property(self, data):
        n = data.draw(st.integers(2, 4))
        a = [[data.draw(st.integers(0, 255)) for _ in range(n)] for _ in range(n)]
        b = [[data.draw(st.integers(0, 255)) for _ in range(n)] for _ in range(n)]
        array = SystolicMatmul(n)
        array.load(a, b)
        assert np.array_equal(np.array(array.run()), reference(a, b))
