"""Tests for topology and routing, cross-checked with networkx."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc import NetworkConfig, Port, RoutingTable, Topology
from repro.noc.reservation import GtReservationTable, ReservationError
from repro.noc.routing import route_port


def build_graph(net):
    topo = Topology(net)
    g = nx.DiGraph()
    g.add_nodes_from(range(net.n_routers))
    for src, _sp, dst, _dp in topo.links():
        g.add_edge(src, dst)
    return g, topo


class TestTopology:
    def test_torus_degree(self):
        net = NetworkConfig(4, 4, topology="torus")
        g, _ = build_graph(net)
        assert all(d == 4 for _, d in g.out_degree())
        assert all(d == 4 for _, d in g.in_degree())

    def test_mesh_corner_degree(self):
        net = NetworkConfig(4, 4, topology="mesh")
        g, _ = build_graph(net)
        corner = net.index(0, 0)
        assert g.out_degree(corner) == 2
        center = net.index(1, 1)
        assert g.out_degree(center) == 4

    def test_neighbor_symmetry(self):
        for topology in ("torus", "mesh"):
            net = NetworkConfig(5, 3, topology=topology)
            topo = Topology(net)
            for r in range(net.n_routers):
                for p in topo.connected_ports(r):
                    nb = topo.neighbor(r, p)
                    assert topo.neighbor(nb, p.opposite) == r

    def test_local_port_has_no_neighbor(self):
        topo = Topology(NetworkConfig(3, 3))
        assert topo.neighbor(0, Port.LOCAL) is None

    def test_torus_is_strongly_connected(self):
        g, _ = build_graph(NetworkConfig(6, 6, topology="torus"))
        assert nx.is_strongly_connected(g)

    def test_mesh_is_strongly_connected(self):
        g, _ = build_graph(NetworkConfig(6, 6, topology="mesh"))
        assert nx.is_strongly_connected(g)

    def test_degenerate_1x2(self):
        net = NetworkConfig(1, 2, topology="torus")
        topo = Topology(net)
        # Height-2 torus: north and south both reach the other router.
        assert topo.neighbor(0, Port.NORTH) == 1
        assert topo.neighbor(0, Port.SOUTH) == 1
        assert topo.neighbor(0, Port.EAST) is None  # width-1: self-loop removed

    def test_wires_pair_fwd_and_room(self):
        net = NetworkConfig(3, 3)
        topo = Topology(net)
        wires = topo.wires()
        fwd = [w for w in wires if w.kind == "fwd"]
        room = [w for w in wires if w.kind == "room"]
        assert len(fwd) == len(room) == len(topo.links())
        # Every room wire flows opposite to its forward wire.
        fwd_set = {(w.writer, w.writer_port, w.reader, w.reader_port) for w in fwd}
        for w in room:
            assert (w.reader, w.reader_port, w.writer, w.writer_port) in fwd_set

    def test_hops_matches_networkx(self):
        for topology in ("torus", "mesh"):
            net = NetworkConfig(4, 3, topology=topology)
            g, topo = build_graph(net)
            lengths = dict(nx.all_pairs_shortest_path_length(g))
            for s in range(net.n_routers):
                for d in range(net.n_routers):
                    assert topo.hops(s, d) == lengths[s][d], (topology, s, d)


class TestRouting:
    def test_route_to_self_is_local(self):
        net = NetworkConfig(4, 4)
        assert route_port(net, 5, 5) == Port.LOCAL

    def test_x_before_y(self):
        net = NetworkConfig(6, 6, topology="mesh")
        # From (0,0) to (3,3): must first go EAST.
        assert route_port(net, net.index(0, 0), net.index(3, 3)) == Port.EAST
        # From (3,0) to (3,3): X done, go SOUTH.
        assert route_port(net, net.index(3, 0), net.index(3, 3)) == Port.SOUTH

    def test_torus_wraps_short_way(self):
        net = NetworkConfig(6, 6, topology="torus")
        # (0,0) -> (5,0): one hop WEST via wrap-around beats 5 hops EAST.
        assert route_port(net, net.index(0, 0), net.index(5, 0)) == Port.WEST
        # Tie at distance 3 (6-wide): positive direction wins.
        assert route_port(net, net.index(0, 0), net.index(3, 0)) == Port.EAST

    def test_paths_have_minimal_length(self):
        for topology in ("torus", "mesh"):
            net = NetworkConfig(4, 4, topology=topology)
            table = RoutingTable(net)
            topo = Topology(net)
            for s in range(net.n_routers):
                for d in range(net.n_routers):
                    path = table.path(s, d)
                    assert len(path) - 1 == topo.hops(s, d)
                    assert path[0] == s and path[-1] == d

    @given(st.integers(0, 35), st.integers(0, 35))
    def test_path_terminates_property(self, s, d):
        net = NetworkConfig(6, 6, topology="torus")
        table = RoutingTable(net)
        path = table.path(s, d)
        assert path[-1] == d
        assert len(set(path)) == len(path)  # no revisits under XY routing

    def test_links_on_path(self):
        net = NetworkConfig(4, 4, topology="mesh")
        table = RoutingTable(net)
        links = table.links_on_path(net.index(0, 0), net.index(2, 0))
        assert links == ((net.index(0, 0), Port.EAST), (net.index(1, 0), Port.EAST))


class TestGtReservation:
    def test_disjoint_streams_share_vc0(self):
        net = NetworkConfig(6, 6)
        table = GtReservationTable(net)
        # One-hop east shifts: link-disjoint, all can take VC 0.
        for y in range(6):
            stream = table.reserve(net.index(0, y), net.index(1, y))
            assert stream.vc == 0

    def test_overlapping_streams_get_distinct_vcs(self):
        net = NetworkConfig(6, 6)
        table = GtReservationTable(net)
        s1 = table.reserve(net.index(0, 0), net.index(2, 0))
        s2 = table.reserve(net.index(1, 0), net.index(3, 0))
        # Both use link (1,0)->(2,0): VCs must differ.
        assert s1.vc != s2.vc

    def test_exhaustion_raises(self):
        net = NetworkConfig(6, 6)  # two GT VCs by default
        table = GtReservationTable(net)
        table.reserve(net.index(0, 0), net.index(2, 0))
        table.reserve(net.index(1, 0), net.index(3, 0))
        with pytest.raises(ReservationError):
            # A third stream over link (1,0)->(2,0) cannot be coloured.
            table.reserve(net.index(0, 0), net.index(3, 0))

    def test_same_destination_needs_distinct_vcs(self):
        net = NetworkConfig(6, 6)
        table = GtReservationTable(net)
        s1 = table.reserve(net.index(1, 1), net.index(3, 1))
        s2 = table.reserve(net.index(3, 2), net.index(3, 1))
        assert s1.vc != s2.vc  # they share the ejection link at (3,1)

    def test_self_stream_rejected(self):
        net = NetworkConfig(6, 6)
        with pytest.raises(ReservationError):
            GtReservationTable(net).reserve(3, 3)

    def test_no_gt_vcs_configured(self):
        from repro.noc import RouterConfig

        net = NetworkConfig(4, 4, router=RouterConfig(gt_vcs=frozenset()))
        with pytest.raises(ReservationError):
            GtReservationTable(net)

    def test_max_link_sharing(self):
        net = NetworkConfig(6, 6)
        table = GtReservationTable(net)
        assert table.max_link_sharing() == 0
        table.reserve(net.index(0, 0), net.index(2, 0))
        table.reserve(net.index(1, 0), net.index(3, 0))
        assert table.max_link_sharing() == 2
