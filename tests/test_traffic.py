"""Tests for traffic generation: RNG, patterns, generators, the driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import CycleEngine
from repro.noc import NetworkConfig, RouterConfig
from repro.noc.packet import PacketClass, flits_per_packet
from repro.traffic import (
    BernoulliBeTraffic,
    GtStreamTraffic,
    HardwareLfsr,
    NetworkOverloadError,
    SoftwareRand,
    StimuliTable,
    TrafficDriver,
    bit_complement,
    hotspot,
    neighbor_shift,
    transpose,
    uniform_random,
)
from repro.traffic.generators import reserve_shift_streams


class TestHardwareLfsr:
    def test_deterministic(self):
        a, b = HardwareLfsr(42), HardwareLfsr(42)
        assert [a.next_u32() for _ in range(10)] == [b.next_u32() for _ in range(10)]

    def test_nonzero_forever(self):
        rng = HardwareLfsr(1)
        assert all(rng.next_u32() != 0 for _ in range(1000))

    def test_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            HardwareLfsr(0)
        with pytest.raises(ValueError):
            HardwareLfsr(2**32)

    def test_next_below_in_range(self):
        rng = HardwareLfsr(7)
        values = [rng.next_below(13) for _ in range(500)]
        assert all(0 <= v < 13 for v in values)
        assert len(set(values)) == 13  # covers the range

    def test_bernoulli_rates(self):
        rng = HardwareLfsr(99)
        hits = sum(rng.bernoulli(0.25) for _ in range(4000))
        assert 800 <= hits <= 1200  # ~1000 expected

    def test_bernoulli_extremes(self):
        rng = HardwareLfsr(3)
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_reasonable_bit_balance(self):
        rng = HardwareLfsr(0xABCDEF)
        ones = sum(bin(rng.next_u32()).count("1") for _ in range(200))
        assert 2800 <= ones <= 3600  # ~3200 of 6400 bits

    def test_words_read_counter(self):
        rng = HardwareLfsr()
        rng.next_u32()
        rng.next_u32()
        assert rng.words_read == 2


class TestSoftwareRand:
    def test_matches_lcg_recurrence(self):
        rng = SoftwareRand(1)
        assert rng.rand() == (1 * 1103515245 + 12345) & 0x7FFFFFFF

    def test_call_counter_measures_cost(self):
        rng = SoftwareRand()
        rng.next_u32()
        assert rng.calls == 2  # two rand() calls per 32-bit word

    def test_next_below(self):
        rng = SoftwareRand(5)
        assert all(0 <= rng.next_below(10) < 10 for _ in range(100))


class TestPatterns:
    def setup_method(self):
        self.net = NetworkConfig(4, 4)
        self.rng = HardwareLfsr(11)

    def test_uniform_never_self(self):
        pattern = uniform_random(self.net)
        for src in range(16):
            for _ in range(50):
                assert pattern(src, self.rng) != src

    def test_transpose(self):
        pattern = transpose(self.net)
        assert pattern(self.net.index(1, 3), None) == self.net.index(3, 1)
        diag = self.net.index(2, 2)
        assert pattern(diag, None) != diag

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose(NetworkConfig(4, 2))

    def test_bit_complement(self):
        pattern = bit_complement(self.net)
        assert pattern(self.net.index(0, 0), None) == self.net.index(3, 3)

    def test_hotspot_concentrates(self):
        pattern = hotspot(self.net, target=5, fraction=0.9)
        hits = sum(pattern(0, self.rng) == 5 for _ in range(300))
        assert hits > 200

    def test_neighbor_shift_wraps(self):
        pattern = neighbor_shift(self.net, dx=1)
        assert pattern(self.net.index(3, 0), None) == self.net.index(0, 0)


class TestGenerators:
    def setup_method(self):
        self.net = NetworkConfig(4, 4)

    def test_be_load_calibration(self):
        """Offered flits/cycle/node approximates the requested load."""
        load = 0.1
        traffic = BernoulliBeTraffic(self.net, load, uniform_random(self.net))
        cycles = 4000
        flits = sum(
            flits_per_packet(10) * len(traffic.packets_for_cycle(t))
            for t in range(cycles)
        )
        measured = flits / (cycles * self.net.n_routers)
        assert measured == pytest.approx(load, rel=0.15)

    def test_zero_load_generates_nothing(self):
        traffic = BernoulliBeTraffic(self.net, 0.0, uniform_random(self.net))
        assert all(not traffic.packets_for_cycle(t) for t in range(100))

    def test_load_bounds(self):
        with pytest.raises(ValueError):
            BernoulliBeTraffic(self.net, 1.5, uniform_random(self.net))

    def test_gt_streams_periodic(self):
        table = reserve_shift_streams(self.net, dx=1)
        traffic = GtStreamTraffic(self.net, table.streams, period=200, payload_bytes=16)
        emitted = [len(traffic.packets_for_cycle(t)) for t in range(400)]
        assert sum(emitted) == 2 * len(table.streams)

    def test_gt_packets_carry_reserved_vc(self):
        table = reserve_shift_streams(self.net, dx=1)
        traffic = GtStreamTraffic(self.net, table.streams, period=50, payload_bytes=4)
        seen = [vc for t in range(50) for _, vc in traffic.packets_for_cycle(t)]
        assert seen and all(vc in self.net.router.gt_vcs for vc in seen)

    def test_gt_load_per_stream(self):
        traffic = GtStreamTraffic(self.net, [], period=1000)
        assert traffic.load_per_stream == pytest.approx(130 / 1000)

    def test_stimuli_table(self):
        from tests.helpers import be_packet

        table = StimuliTable()
        table.add_packet(self.net, be_packet(self.net, 0, 5), vc=2, cycle=7)
        assert len(table) == 7
        entries = table.drain()
        assert len(table) == 0
        assert all(e.cycle == 7 and e.router == 0 and e.vc == 2 for e in entries)


class TestTrafficDriver:
    def test_low_load_delivers_everything(self):
        net = NetworkConfig(3, 3)
        engine = CycleEngine(net)
        be = BernoulliBeTraffic(net, 0.05, uniform_random(net), seed=21)
        driver = TrafficDriver(engine, be=be)
        driver.run(300)
        driver.be = None  # stop generating
        driver.drain()
        assert len(engine.injections) == len(engine.ejections)
        assert driver.flits_generated == len(engine.injections)

    def test_gt_and_be_combined(self):
        net = NetworkConfig(3, 3)
        engine = CycleEngine(net)
        table = reserve_shift_streams(net, dx=1)
        gt = GtStreamTraffic(net, table.streams, period=150, payload_bytes=32)
        be = BernoulliBeTraffic(net, 0.04, uniform_random(net), seed=5)
        driver = TrafficDriver(engine, be=be, gt=gt)
        driver.run(300)
        driver.be = None
        driver.gt = None
        driver.drain()
        from repro.stats.throughput import per_class_flit_counts

        counts = per_class_flit_counts(engine)
        assert counts["GT"] > 0 and counts["BE"] > 0

    def test_overload_detection(self):
        """Saturating a tiny network trips the paper's overload stop."""
        net = NetworkConfig(2, 2, router=RouterConfig(queue_depth=1))
        engine = CycleEngine(net)
        be = BernoulliBeTraffic(net, 1.0, hotspot(net, target=0, fraction=1.0), seed=9)
        driver = TrafficDriver(engine, be=be, stall_limit=50)
        with pytest.raises(NetworkOverloadError):
            driver.run(3000)
        assert driver.overloaded

    def test_deterministic_across_engines(self):
        from repro.engines import SequentialEngine

        net = NetworkConfig(3, 3)
        logs = []
        for engine_cls in (CycleEngine, SequentialEngine):
            engine = engine_cls(net)
            be = BernoulliBeTraffic(net, 0.06, uniform_random(net), seed=77)
            driver = TrafficDriver(engine, be=be)
            driver.run(150)
            logs.append([r.__dict__ for r in engine.injections])
        assert logs[0] == logs[1]
